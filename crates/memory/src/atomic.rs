//! Atomic (linearizable) memory — the "stronger-than-causal" model of
//! the paper's closing Section 1.1 remark: *"There are other
//! stronger-than-causal memory models (e.g., the atomic memory model) to
//! which this may apply as well."*
//!
//! Implementation: the [`Sequencer`](crate::sequencer::Sequencer)
//! write path (all writes totally ordered by the process with in-system
//! index 0, writers block until their ordered write applies locally)
//! plus **blocking reads**: a read round-trips to the sequencer, whose
//! processing instant is the read's serialization point. Every operation
//! thus has a linearization point inside its `[issued, completed]`
//! interval at the single serialization site — the textbook
//! single-serializer construction of atomic memory.
//!
//! The local replicas are still maintained at every process (the
//! ordered writes are broadcast and applied in order), so the
//! IS-process upcall reads stay local and immediate, as the paper's
//! conditions (a)–(c) require. Experiment X13 interconnects two atomic
//! systems and shows the union is causal (Theorem 1 applies: atomic ⊆
//! causal) but **not** atomic — the propagation delay is visible to
//! real-time-aware readers.

use std::collections::BTreeMap;
use std::fmt;

use cmi_types::{ProcId, Value, VarId};

use crate::msg::McsMsg;
use crate::protocol::{
    McsProtocol, Outbox, PendingUpdate, ReadOutcome, Replicas, UpdateMeta, WriteOutcome,
};
use crate::sequencer::SEQUENCER_SLOT;

/// One MCS-process of the atomic memory protocol.
pub struct Atomic {
    me: ProcId,
    n_procs: usize,
    replicas: Replicas,
    next_order: u64,
    applied_seq: u64,
    buffer: BTreeMap<u64, (VarId, Value, ProcId)>,
}

impl Atomic {
    /// Creates the MCS-process `me` of a system with `n_procs`
    /// MCS-processes and `n_vars` shared variables.
    pub fn new(me: ProcId, n_procs: usize, n_vars: usize) -> Self {
        assert!(me.slot() < n_procs, "process slot out of range");
        Atomic {
            me,
            n_procs,
            replicas: Replicas::new(n_vars),
            next_order: 0,
            applied_seq: 0,
            buffer: BTreeMap::new(),
        }
    }

    /// `true` if this process is the serialization point.
    pub fn is_sequencer(&self) -> bool {
        self.me.index == SEQUENCER_SLOT
    }

    fn sequencer_proc(&self) -> ProcId {
        ProcId::new(self.me.system, SEQUENCER_SLOT)
    }

    fn order(&mut self, var: VarId, val: Value, writer: ProcId, out: &mut Outbox) {
        debug_assert!(self.is_sequencer());
        self.next_order += 1;
        let seq = self.next_order;
        for k in 0..self.n_procs {
            let peer = ProcId::new(self.me.system, k as u16);
            if peer != self.me {
                out.send(
                    peer,
                    McsMsg::SeqOrdered {
                        var,
                        val,
                        writer,
                        seq,
                    },
                );
            }
        }
        self.buffer.insert(seq, (var, val, writer));
    }

    /// The sequencer's authoritative current value: everything it has
    /// ordered so far is applied locally before any later event, so its
    /// replica *is* the linearized state — but only after draining its
    /// own pending queue, which the host does eagerly after every event.
    fn authoritative(&self, var: VarId) -> Option<Value> {
        debug_assert!(self.is_sequencer());
        debug_assert_eq!(
            self.applied_seq, self.next_order,
            "sequencer lagging itself"
        );
        self.replicas.read(var)
    }
}

impl fmt::Debug for Atomic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Atomic")
            .field("me", &self.me)
            .field("applied_seq", &self.applied_seq)
            .finish()
    }
}

impl McsProtocol for Atomic {
    fn buffered(&self) -> usize {
        self.buffer.len()
    }

    fn proc(&self) -> ProcId {
        self.me
    }

    fn read(&self, var: VarId) -> Option<Value> {
        // Local replica peek — used by IS-process upcalls only;
        // application reads go through `read_call`.
        self.replicas.read(var)
    }

    fn read_call(&mut self, var: VarId, out: &mut Outbox) -> ReadOutcome {
        if self.is_sequencer() {
            ReadOutcome::Done(self.authoritative(var))
        } else {
            out.send(self.sequencer_proc(), McsMsg::AtomicReadRequest { var });
            ReadOutcome::Pending
        }
    }

    fn write(&mut self, var: VarId, val: Value, out: &mut Outbox) -> WriteOutcome {
        if self.is_sequencer() {
            self.order(var, val, self.me, out);
        } else {
            out.send(self.sequencer_proc(), McsMsg::SeqRequest { var, val });
        }
        WriteOutcome::Pending
    }

    fn on_message(&mut self, from: ProcId, msg: McsMsg, out: &mut Outbox) {
        match msg {
            McsMsg::SeqRequest { var, val } => {
                assert!(self.is_sequencer(), "SeqRequest sent to non-sequencer");
                self.order(var, val, from, out);
            }
            McsMsg::SeqOrdered {
                var,
                val,
                writer,
                seq,
            } => {
                assert!(!self.is_sequencer() || writer == self.me);
                self.buffer.insert(seq, (var, val, writer));
            }
            McsMsg::AtomicReadRequest { var } => {
                assert!(self.is_sequencer(), "read request sent to non-sequencer");
                // This instant is the read's serialization point.
                let val = self.authoritative(var);
                out.send(from, McsMsg::AtomicReadReply { var, val });
            }
            McsMsg::AtomicReadReply { var, val } => {
                out.complete_read(var, val);
            }
            other => panic!("Atomic received foreign message {other:?}"),
        }
    }

    fn next_applicable(&mut self) -> Option<PendingUpdate> {
        let next = self.applied_seq + 1;
        let (var, val, writer) = self.buffer.remove(&next)?;
        Some(PendingUpdate {
            var,
            val,
            writer,
            meta: UpdateMeta::Seq { seq: next },
        })
    }

    fn apply(&mut self, update: &PendingUpdate, out: &mut Outbox) {
        let UpdateMeta::Seq { seq } = update.meta else {
            panic!("Atomic asked to apply foreign update {update:?}");
        };
        debug_assert_eq!(self.applied_seq + 1, seq, "applied out of total order");
        self.applied_seq = seq;
        self.replicas.store(update.var, update.val);
        if update.writer == self.me {
            out.complete_write(update.var, update.val);
        }
    }

    fn satisfies_causal_updating(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmi_types::SystemId;

    fn proc(i: u16) -> ProcId {
        ProcId::new(SystemId(0), i)
    }

    fn drain(p: &mut Atomic) -> Vec<Outbox> {
        let mut outs = Vec::new();
        while let Some(u) = p.next_applicable() {
            let mut out = Outbox::new();
            p.apply(&u, &mut out);
            outs.push(out);
        }
        outs
    }

    #[test]
    fn sequencer_reads_are_local_and_authoritative() {
        let mut s = Atomic::new(proc(0), 2, 1);
        let mut out = Outbox::new();
        assert_eq!(s.read_call(VarId(0), &mut out), ReadOutcome::Done(None));
        let v = Value::new(proc(0), 1);
        s.write(VarId(0), v, &mut out);
        drain(&mut s);
        let mut out = Outbox::new();
        assert_eq!(s.read_call(VarId(0), &mut out), ReadOutcome::Done(Some(v)));
        assert!(out.sends.is_empty());
    }

    #[test]
    fn non_sequencer_read_round_trips() {
        let mut s0 = Atomic::new(proc(0), 2, 1);
        let mut s1 = Atomic::new(proc(1), 2, 1);
        // Write v through the sequencer first.
        let v = Value::new(proc(0), 1);
        let mut out = Outbox::new();
        s0.write(VarId(0), v, &mut out);
        drain(&mut s0);
        // s1 issues a blocking read.
        let mut out1 = Outbox::new();
        assert_eq!(s1.read_call(VarId(0), &mut out1), ReadOutcome::Pending);
        let (to, req) = out1.sends.remove(0);
        assert_eq!(to, proc(0));
        let mut out0 = Outbox::new();
        s0.on_message(proc(1), req, &mut out0);
        let (_, reply) = out0.sends.remove(0);
        let mut out1 = Outbox::new();
        s1.on_message(proc(0), reply, &mut out1);
        assert_eq!(out1.completed_read, Some((VarId(0), Some(v))));
    }

    #[test]
    fn read_sees_ordered_write_even_before_local_apply() {
        // The point of atomic reads: s1 has not applied v yet, but its
        // read goes to the sequencer and returns v anyway.
        let mut s0 = Atomic::new(proc(0), 2, 1);
        let mut s1 = Atomic::new(proc(1), 2, 1);
        let v = Value::new(proc(0), 1);
        let mut out = Outbox::new();
        s0.write(VarId(0), v, &mut out);
        drain(&mut s0);
        assert_eq!(s1.read(VarId(0)), None, "local replica still stale");
        let mut out1 = Outbox::new();
        s1.read_call(VarId(0), &mut out1);
        let (_, req) = out1.sends.remove(0);
        let mut out0 = Outbox::new();
        s0.on_message(proc(1), req, &mut out0);
        match &out0.sends[0].1 {
            McsMsg::AtomicReadReply { val, .. } => assert_eq!(*val, Some(v)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn write_path_matches_the_sequencer_protocol() {
        let mut s1 = Atomic::new(proc(1), 2, 1);
        let v = Value::new(proc(1), 1);
        let mut out = Outbox::new();
        assert_eq!(s1.write(VarId(0), v, &mut out), WriteOutcome::Pending);
        assert!(matches!(out.sends[0].1, McsMsg::SeqRequest { .. }));
        assert!(s1.satisfies_causal_updating());
        assert!(s1.is_causal());
    }
}
