//! Deliberately faulty eager protocol — **not** causal memory.
//!
//! Writes are applied locally and broadcast; receivers apply updates in
//! arrival order with no causal gating, so only per-sender FIFO holds
//! (from the FIFO channels). When update routes have asymmetric delays,
//! a process can apply a causally *later* write before an earlier one and
//! its reads violate causality.
//!
//! This protocol exists for **negative testing only**: it is the fixture
//! with which the test-suite proves that `cmi-checker` actually detects
//! non-causal histories, and it grounds the ablation experiment X7.

use std::collections::VecDeque;
use std::fmt;

use cmi_types::{ProcId, Value, VarId};

use crate::msg::McsMsg;
use crate::protocol::{McsProtocol, Outbox, PendingUpdate, Replicas, UpdateMeta, WriteOutcome};

/// One MCS-process of the faulty eager protocol.
pub struct EagerFifo {
    me: ProcId,
    n_procs: usize,
    replicas: Replicas,
    inbox: VecDeque<(ProcId, VarId, Value)>,
}

impl EagerFifo {
    /// Creates the MCS-process `me` of a system with `n_procs`
    /// MCS-processes and `n_vars` shared variables.
    pub fn new(me: ProcId, n_procs: usize, n_vars: usize) -> Self {
        assert!(me.slot() < n_procs, "process slot out of range");
        EagerFifo {
            me,
            n_procs,
            replicas: Replicas::new(n_vars),
            inbox: VecDeque::new(),
        }
    }
}

impl fmt::Debug for EagerFifo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EagerFifo")
            .field("me", &self.me)
            .field("queued", &self.inbox.len())
            .finish()
    }
}

impl McsProtocol for EagerFifo {
    fn proc(&self) -> ProcId {
        self.me
    }

    fn read(&self, var: VarId) -> Option<Value> {
        self.replicas.read(var)
    }

    fn write(&mut self, var: VarId, val: Value, out: &mut Outbox) -> WriteOutcome {
        self.replicas.store(var, val);
        for k in 0..self.n_procs {
            let peer = ProcId::new(self.me.system, k as u16);
            if peer != self.me {
                out.send(peer, McsMsg::EagerUpdate { var, val });
            }
        }
        WriteOutcome::Done
    }

    fn on_message(&mut self, from: ProcId, msg: McsMsg, _out: &mut Outbox) {
        match msg {
            McsMsg::EagerUpdate { var, val } => self.inbox.push_back((from, var, val)),
            other => panic!("EagerFifo received foreign message {other:?}"),
        }
    }

    fn next_applicable(&mut self) -> Option<PendingUpdate> {
        let (writer, var, val) = self.inbox.pop_front()?;
        Some(PendingUpdate {
            var,
            val,
            writer,
            meta: UpdateMeta::None,
        })
    }

    fn apply(&mut self, update: &PendingUpdate, _out: &mut Outbox) {
        self.replicas.store(update.var, update.val);
    }

    fn satisfies_causal_updating(&self) -> bool {
        false
    }

    fn is_causal(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmi_types::SystemId;

    fn proc(i: u16) -> ProcId {
        ProcId::new(SystemId(0), i)
    }

    #[test]
    fn applies_in_arrival_order_without_gating() {
        let mut p = EagerFifo::new(proc(2), 3, 2);
        // A causally later write (u after v) arriving first is applied
        // first — the defect this fixture exists to exhibit.
        let v = Value::new(proc(0), 1);
        let u = Value::new(proc(1), 1);
        p.on_message(
            proc(1),
            McsMsg::EagerUpdate {
                var: VarId(1),
                val: u,
            },
            &mut Outbox::new(),
        );
        p.on_message(
            proc(0),
            McsMsg::EagerUpdate {
                var: VarId(0),
                val: v,
            },
            &mut Outbox::new(),
        );
        let first = p.next_applicable().unwrap();
        assert_eq!(first.val, u);
        p.apply(&first, &mut Outbox::new());
        assert_eq!(p.read(VarId(1)), Some(u));
        assert_eq!(p.read(VarId(0)), None, "v not applied yet");
    }

    #[test]
    fn write_is_local_and_broadcast() {
        let mut p = EagerFifo::new(proc(0), 4, 1);
        let mut out = Outbox::new();
        let v = Value::new(proc(0), 1);
        assert_eq!(p.write(VarId(0), v, &mut out), WriteOutcome::Done);
        assert_eq!(out.sends.len(), 3);
        assert_eq!(p.read(VarId(0)), Some(v));
    }

    #[test]
    fn honestly_reports_its_defects() {
        let p = EagerFifo::new(proc(0), 2, 1);
        assert!(!p.satisfies_causal_updating());
        assert!(!p.is_causal());
    }
}
