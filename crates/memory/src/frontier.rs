//! Dependency-frontier causal memory.
//!
//! A second propagation-based causal protocol, wire-incompatible with
//! [`AhamadCausal`](crate::ahamad::AhamadCausal), in the spirit of the
//! parametrized protocol of Jiménez, Fernández & Cholvi (the paper's
//! reference \[6\]): instead of stamping updates with a full vector
//! clock, each update names its causal **dependency frontier** — for
//! every process, the latest of its writes the writer had applied — and a
//! receiver buffers the update until every named `(process, seq)` pair
//! has been applied locally.
//!
//! The protocol exists so the repository can demonstrate the paper's
//! headline flexibility: interconnecting systems that run *different*
//! causal MCS protocols. Delivery is causal, so the Causal Updating
//! Property holds.

use std::collections::HashMap;
use std::fmt;

use cmi_types::{ProcId, Value, VarId};

use crate::msg::McsMsg;
use crate::protocol::{McsProtocol, Outbox, PendingUpdate, Replicas, UpdateMeta, WriteOutcome};

/// One MCS-process of the dependency-frontier causal protocol.
pub struct DepFrontier {
    me: ProcId,
    n_procs: usize,
    replicas: Replicas,
    /// Contiguous count of applied writes per process (own included).
    applied: HashMap<ProcId, u64>,
    /// Latest applied write per process — the frontier piggybacked on the
    /// next outgoing update.
    frontier: HashMap<ProcId, u64>,
    /// Number of writes issued locally.
    my_seq: u64,
    /// Received, not yet deliverable updates.
    buffer: Vec<BufferedUpdate>,
}

struct BufferedUpdate {
    writer: ProcId,
    var: VarId,
    val: Value,
    seq: u64,
    deps: Vec<(ProcId, u64)>,
}

impl DepFrontier {
    /// Creates the MCS-process `me` of a system with `n_procs`
    /// MCS-processes and `n_vars` shared variables.
    pub fn new(me: ProcId, n_procs: usize, n_vars: usize) -> Self {
        assert!(me.slot() < n_procs, "process slot out of range");
        DepFrontier {
            me,
            n_procs,
            replicas: Replicas::new(n_vars),
            applied: HashMap::new(),
            frontier: HashMap::new(),
            my_seq: 0,
            buffer: Vec::new(),
        }
    }

    /// Number of buffered (received, undeliverable) updates.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    fn deps_satisfied(&self, deps: &[(ProcId, u64)]) -> bool {
        deps.iter()
            .all(|(p, s)| self.applied.get(p).copied().unwrap_or(0) >= *s)
    }

    fn snapshot_frontier(&self) -> Vec<(ProcId, u64)> {
        let mut deps: Vec<_> = self.frontier.iter().map(|(p, s)| (*p, *s)).collect();
        deps.sort_unstable();
        deps
    }

    fn peers(&self) -> impl Iterator<Item = ProcId> + '_ {
        let me = self.me;
        (0..self.n_procs)
            .map(move |k| ProcId::new(me.system, k as u16))
            .filter(move |p| *p != me)
    }
}

impl fmt::Debug for DepFrontier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DepFrontier")
            .field("me", &self.me)
            .field("my_seq", &self.my_seq)
            .field("buffered", &self.buffer.len())
            .finish()
    }
}

impl McsProtocol for DepFrontier {
    fn buffered(&self) -> usize {
        self.buffer.len()
    }

    fn proc(&self) -> ProcId {
        self.me
    }

    fn read(&self, var: VarId) -> Option<Value> {
        self.replicas.read(var)
    }

    fn write(&mut self, var: VarId, val: Value, out: &mut Outbox) -> WriteOutcome {
        let deps = self.snapshot_frontier();
        self.my_seq += 1;
        self.applied.insert(self.me, self.my_seq);
        self.frontier.insert(self.me, self.my_seq);
        self.replicas.store(var, val);
        for peer in self.peers().collect::<Vec<_>>() {
            out.send(
                peer,
                McsMsg::FrontierUpdate {
                    var,
                    val,
                    seq: self.my_seq,
                    deps: deps.clone(),
                },
            );
        }
        WriteOutcome::Done
    }

    fn on_message(&mut self, from: ProcId, msg: McsMsg, _out: &mut Outbox) {
        match msg {
            McsMsg::FrontierUpdate {
                var,
                val,
                seq,
                deps,
            } => {
                assert_eq!(
                    from.system, self.me.system,
                    "frontier update from foreign system"
                );
                self.buffer.push(BufferedUpdate {
                    writer: from,
                    var,
                    val,
                    seq,
                    deps,
                });
            }
            other => panic!("DepFrontier received foreign message {other:?}"),
        }
    }

    fn next_applicable(&mut self) -> Option<PendingUpdate> {
        let pos = self.buffer.iter().position(|b| {
            // The writer's previous write is always in `deps` (its own
            // frontier entry), so satisfying deps implies per-writer
            // order; the explicit check keeps the invariant local.
            self.deps_satisfied(&b.deps)
                && self.applied.get(&b.writer).copied().unwrap_or(0) + 1 == b.seq
        })?;
        let b = self.buffer.remove(pos);
        Some(PendingUpdate {
            var: b.var,
            val: b.val,
            writer: b.writer,
            meta: UpdateMeta::Frontier { seq: b.seq },
        })
    }

    fn apply(&mut self, update: &PendingUpdate, _out: &mut Outbox) {
        let UpdateMeta::Frontier { seq } = update.meta else {
            panic!("DepFrontier asked to apply foreign update {update:?}");
        };
        let prev = self.applied.get(&update.writer).copied().unwrap_or(0);
        debug_assert_eq!(prev + 1, seq, "update applied out of order");
        self.applied.insert(update.writer, seq);
        let f = self.frontier.entry(update.writer).or_insert(0);
        *f = (*f).max(seq);
        self.replicas.store(update.var, update.val);
    }

    fn satisfies_causal_updating(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmi_types::SystemId;

    fn proc(i: u16) -> ProcId {
        ProcId::new(SystemId(0), i)
    }

    fn drain(p: &mut DepFrontier) -> Vec<Value> {
        let mut out = Outbox::new();
        let mut vals = Vec::new();
        while let Some(u) = p.next_applicable() {
            p.apply(&u, &mut out);
            vals.push(u.val);
        }
        vals
    }

    #[test]
    fn first_write_has_empty_deps() {
        let mut p = DepFrontier::new(proc(0), 2, 1);
        let mut out = Outbox::new();
        p.write(VarId(0), Value::new(proc(0), 1), &mut out);
        match &out.sends[0].1 {
            McsMsg::FrontierUpdate { seq, deps, .. } => {
                assert_eq!(*seq, 1);
                assert!(deps.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn second_write_depends_on_first() {
        let mut p = DepFrontier::new(proc(0), 2, 1);
        let mut out = Outbox::new();
        p.write(VarId(0), Value::new(proc(0), 1), &mut out);
        out.sends.clear();
        p.write(VarId(0), Value::new(proc(0), 2), &mut out);
        match &out.sends[0].1 {
            McsMsg::FrontierUpdate { seq, deps, .. } => {
                assert_eq!(*seq, 2);
                assert_eq!(deps, &[(proc(0), 1)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cross_process_dependency_gates_delivery() {
        // p0 writes v; p1 applies it, writes u (dep on v); p2 gets u
        // before v.
        let mut p0 = DepFrontier::new(proc(0), 3, 2);
        let mut p1 = DepFrontier::new(proc(1), 3, 2);
        let mut p2 = DepFrontier::new(proc(2), 3, 2);
        let v = Value::new(proc(0), 1);
        let u = Value::new(proc(1), 1);

        let mut out = Outbox::new();
        p0.write(VarId(0), v, &mut out);
        let v_to_p1 = out.sends[0].1.clone();
        let v_to_p2 = out.sends[1].1.clone();

        p1.on_message(proc(0), v_to_p1, &mut Outbox::new());
        drain(&mut p1);
        let mut out1 = Outbox::new();
        p1.write(VarId(1), u, &mut out1);
        match &out1.sends[0].1 {
            McsMsg::FrontierUpdate { deps, .. } => {
                assert!(deps.contains(&(proc(0), 1)), "u must depend on v");
            }
            other => panic!("unexpected {other:?}"),
        }
        let u_to_p2 = out1.sends[1].1.clone();

        p2.on_message(proc(1), u_to_p2, &mut Outbox::new());
        assert!(drain(&mut p2).is_empty());
        assert_eq!(p2.buffered(), 1);
        p2.on_message(proc(0), v_to_p2, &mut Outbox::new());
        assert_eq!(drain(&mut p2), vec![v, u]);
        assert_eq!(p2.read(VarId(0)), Some(v));
        assert_eq!(p2.read(VarId(1)), Some(u));
    }

    #[test]
    fn per_writer_fifo_is_enforced() {
        let mut p0 = DepFrontier::new(proc(0), 2, 1);
        let mut p1 = DepFrontier::new(proc(1), 2, 1);
        let v1 = Value::new(proc(0), 1);
        let v2 = Value::new(proc(0), 2);
        let mut o = Outbox::new();
        p0.write(VarId(0), v1, &mut o);
        let m1 = o.sends[0].1.clone();
        o.sends.clear();
        p0.write(VarId(0), v2, &mut o);
        let m2 = o.sends[0].1.clone();
        p1.on_message(proc(0), m2, &mut Outbox::new());
        assert!(drain(&mut p1).is_empty());
        p1.on_message(proc(0), m1, &mut Outbox::new());
        assert_eq!(drain(&mut p1), vec![v1, v2]);
    }

    #[test]
    fn concurrent_updates_deliver_in_arrival_order() {
        let mut p0 = DepFrontier::new(proc(0), 3, 1);
        let mut p1 = DepFrontier::new(proc(1), 3, 1);
        let mut p2 = DepFrontier::new(proc(2), 3, 1);
        let v = Value::new(proc(0), 1);
        let u = Value::new(proc(1), 1);
        let mut o0 = Outbox::new();
        let mut o1 = Outbox::new();
        p0.write(VarId(0), v, &mut o0);
        p1.write(VarId(0), u, &mut o1);
        p2.on_message(proc(1), o1.sends[1].1.clone(), &mut Outbox::new());
        p2.on_message(proc(0), o0.sends[1].1.clone(), &mut Outbox::new());
        assert_eq!(drain(&mut p2), vec![u, v]);
    }

    #[test]
    fn reports_causal_updating() {
        let p = DepFrontier::new(proc(0), 2, 1);
        assert!(p.satisfies_causal_updating());
        assert!(p.is_causal());
    }
}
