//! Propagation-based memory consistency system (MCS) protocols.
//!
//! The paper interconnects *existing* causal DSM systems, "possibly
//! implemented with different propagation-based protocols". This crate
//! provides those systems:
//!
//! * [`AhamadCausal`](ahamad::AhamadCausal) — the classic vector-clock
//!   causal memory of Ahamad, Neiger, Burns, Kohli & Hutto (paper's
//!   reference \[2\]): writes are applied locally and broadcast; receivers
//!   delay application until causally deliverable.
//! * [`DepFrontier`](frontier::DepFrontier) — a second, wire-incompatible
//!   causal protocol gating on explicit dependency frontiers (in the
//!   spirit of the parametrized protocol of the paper's reference \[6\]);
//!   used to demonstrate interconnection of *heterogeneous* systems.
//! * [`Sequencer`](sequencer::Sequencer) — an Attiya–Welch style
//!   local-read protocol (paper's reference \[3\]): writes are totally
//!   ordered by a sequencer and block until ordered, reads are local.
//!   It implements *sequential* consistency, which is stronger than (and
//!   in particular is) causal, backing the paper's Section 1.1 remark
//!   that two sequential systems can be interconnected into a causal one.
//! * [`EagerFifo`](eager::EagerFifo) — a deliberately **non-causal**
//!   protocol (applies updates in arrival order with only per-sender
//!   FIFO); exists so the test-suite can prove the consistency checker
//!   actually detects violations.
//!
//! All protocols satisfy the paper's architecture (Attiya & Welch MCS
//! model): every MCS-process holds a replica of every variable, reads are
//! local, and every write is eventually propagated to every replica. The
//! first three satisfy the **Causal Updating Property** (Property 1 of
//! the paper); each protocol reports this via
//! [`McsProtocol::satisfies_causal_updating`], which the IS-process uses
//! to choose between the paper's two IS-protocol variants.
//!
//! [`NodeHost`] hosts one MCS-process together with its
//! attached application (or IS-) process and implements the paper's
//! upcall contract: `pre_update(x)` / `post_update(x,v)` fire
//! synchronously around replica updates caused by *other* processes'
//! writes, never for the attached process's own writes, and reads issued
//! while processing an upcall are local and return exactly the pre-/post-
//! image (conditions (a)–(c) of Section 2 hold by construction).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ahamad;
pub mod atomic;
pub mod eager;
pub mod frontier;
pub mod msg;
pub mod node;
pub mod protocol;
pub mod sequencer;
pub mod system;
pub mod varseq;
pub mod workload;

pub use msg::McsMsg;
pub use node::{HostSink, NoUpcalls, NodeHost, ReplicaUpdate, UpcallHandler};
pub use protocol::{McsProtocol, Outbox, PendingUpdate, ProtocolKind, ReadOutcome, WriteOutcome};
pub use system::{SingleSystem, SystemConfig};
pub use workload::{Driver, OpPlan, ScriptedDriver, VarPattern, WorkloadDriver, WorkloadSpec};
