//! The wire format shared by all MCS protocols.

use std::fmt;

use cmi_types::{ProcId, Value, VarId, VectorClock};

/// Union of the messages of every MCS protocol in this crate.
///
/// A single enum (rather than one message type per protocol) lets a
/// simulated world host systems running *different* protocols — the
/// heterogeneity the paper's interconnection is designed for. A protocol
/// must only ever receive its own variants; receiving a foreign variant
/// indicates mis-wiring and panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McsMsg {
    /// Ahamad-style causal update: the sender applied `val` to `var` and
    /// its vector clock became `vc`.
    AhamadUpdate {
        /// Variable written.
        var: VarId,
        /// Value written (globally unique).
        val: Value,
        /// Sender's vector clock *after* the write.
        vc: VectorClock,
    },
    /// Dependency-frontier causal update: deliverable once, for every
    /// `(proc, seq)` in `deps`, the receiver has applied that process's
    /// `seq`-th write.
    FrontierUpdate {
        /// Variable written.
        var: VarId,
        /// Value written.
        val: Value,
        /// Per-writer sequence number of this write (1-based).
        seq: u64,
        /// Causal dependency frontier at the writer.
        deps: Vec<(ProcId, u64)>,
    },
    /// Sequencer protocol: a non-sequencer process asks the sequencer to
    /// order its write.
    SeqRequest {
        /// Variable to write.
        var: VarId,
        /// Value to write.
        val: Value,
    },
    /// Sequencer protocol: write `⟨var,val⟩` by `writer` received global
    /// order number `seq`; applied by every process in `seq` order.
    SeqOrdered {
        /// Variable written.
        var: VarId,
        /// Value written.
        val: Value,
        /// Process that issued the write.
        writer: ProcId,
        /// Global total-order position (1-based, dense).
        seq: u64,
    },
    /// Faulty eager protocol: apply on receipt, no causal gating.
    EagerUpdate {
        /// Variable written.
        var: VarId,
        /// Value written.
        val: Value,
    },
    /// Atomic memory: a non-sequencer process asks the sequencer for the
    /// current value of `var` (the read's serialization point).
    AtomicReadRequest {
        /// Variable to read.
        var: VarId,
    },
    /// Atomic memory: the sequencer's reply with `var`'s value at the
    /// serialization point (`None` = still `⊥`).
    AtomicReadReply {
        /// Variable read.
        var: VarId,
        /// The value at the serialization point.
        val: Option<Value>,
    },
    /// Per-variable sequencer protocol: a non-owner asks the variable's
    /// owner to order its write.
    VarSeqRequest {
        /// Variable to write.
        var: VarId,
        /// Value to write.
        val: Value,
    },
    /// Per-variable sequencer protocol: write `⟨var,val⟩` by `writer`
    /// received order `seq` among the writes **to `var`**.
    VarSeqOrdered {
        /// Variable written.
        var: VarId,
        /// Value written.
        val: Value,
        /// Process that issued the write.
        writer: ProcId,
        /// Per-variable total-order position (1-based, dense).
        seq: u64,
    },
}

impl McsMsg {
    /// Short human-readable label used in protocol traces.
    pub fn label(&self) -> &'static str {
        match self {
            McsMsg::AhamadUpdate { .. } => "ahamad-update",
            McsMsg::FrontierUpdate { .. } => "frontier-update",
            McsMsg::SeqRequest { .. } => "seq-request",
            McsMsg::SeqOrdered { .. } => "seq-ordered",
            McsMsg::EagerUpdate { .. } => "eager-update",
            McsMsg::AtomicReadRequest { .. } => "atomic-read-request",
            McsMsg::AtomicReadReply { .. } => "atomic-read-reply",
            McsMsg::VarSeqRequest { .. } => "varseq-request",
            McsMsg::VarSeqOrdered { .. } => "varseq-ordered",
        }
    }
}

impl fmt::Display for McsMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McsMsg::AhamadUpdate { var, val, vc } => write!(f, "upd({var},{val},{vc})"),
            McsMsg::FrontierUpdate {
                var,
                val,
                seq,
                deps,
            } => {
                write!(f, "upd({var},{val},#{seq},deps={})", deps.len())
            }
            McsMsg::SeqRequest { var, val } => write!(f, "req({var},{val})"),
            McsMsg::SeqOrdered {
                var,
                val,
                writer,
                seq,
            } => {
                write!(f, "ord({var},{val},{writer},#{seq})")
            }
            McsMsg::EagerUpdate { var, val } => write!(f, "eager({var},{val})"),
            McsMsg::AtomicReadRequest { var } => write!(f, "aread({var})"),
            McsMsg::AtomicReadReply { var, val: Some(v) } => write!(f, "areply({var},{v})"),
            McsMsg::AtomicReadReply { var, val: None } => write!(f, "areply({var},⊥)"),
            McsMsg::VarSeqRequest { var, val } => write!(f, "vreq({var},{val})"),
            McsMsg::VarSeqOrdered {
                var,
                val,
                writer,
                seq,
            } => {
                write!(f, "vord({var},{val},{writer},#{seq})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmi_types::SystemId;

    #[test]
    fn labels_and_display_are_stable() {
        let p = ProcId::new(SystemId(0), 0);
        let m = McsMsg::SeqOrdered {
            var: VarId(1),
            val: Value::new(p, 2),
            writer: p,
            seq: 9,
        };
        assert_eq!(m.label(), "seq-ordered");
        assert!(m.to_string().contains("#9"));
        let a = McsMsg::AhamadUpdate {
            var: VarId(0),
            val: Value::new(p, 1),
            vc: VectorClock::new(2),
        };
        assert_eq!(a.label(), "ahamad-update");
        assert!(a.to_string().contains("⟨0,0⟩"));
    }
}
