//! One simulated node: an MCS-process together with its attached
//! application (or IS-) process, implementing the paper's upcall
//! interface.
//!
//! # The upcall contract (paper, Section 2)
//!
//! The paper extends the interface between an IS-process and its
//! MCS-process with two upcalls around every replica update caused by a
//! write *not* issued by the IS-process itself:
//!
//! * `pre_update(x)` immediately **before** the replica of `x` changes
//!   (only when enabled — IS-protocol variant 2);
//! * `post_update(x,v)` immediately **after**.
//!
//! While an upcall is processed the MCS-process blocks, and the paper
//! demands: **(a)** the pre-image `s` stays until the update and the new
//! value `v` stays until the `post_update` response, **(b)** reads issued
//! during upcalls terminate, and **(c)** they return `s` / `v`
//! respectively.
//!
//! In this implementation the MCS-process and its attached process are
//! co-located in one simulator actor, so an upcall is a synchronous call
//! into the attached [`UpcallHandler`]. The host issues the IS-process's
//! unconditional upcall reads itself (recording them as operations of the
//! attached process — they are the reads of the paper's
//! `Pre_Propagate_out` and `Propagate_out` tasks) and hands the returned
//! value to the handler. Because nothing else can run between the read
//! and the update, conditions (a)–(c) hold by construction.

use std::fmt;

use cmi_obs::LineageRecorder;
use cmi_types::{OpRecord, ProcId, SimTime, Value, VarId};

use crate::msg::McsMsg;
use crate::protocol::{McsProtocol, Outbox, ReadOutcome, WriteOutcome};

/// Simulator capabilities the host needs while handling an event.
///
/// Implemented by the actor wrappers in this crate (single-system runs)
/// and in `cmi-core` (interconnected worlds).
pub trait HostSink {
    /// Current virtual time.
    fn now(&self) -> SimTime;
    /// Transmits a protocol message to the MCS-process of `to`.
    fn send_mcs(&mut self, to: ProcId, msg: McsMsg);
    /// Appends a protocol-trace annotation (no-op unless tracing).
    fn note(&mut self, text: String);
    /// `true` if a trace consumer is attached. Callers skip building
    /// note strings when it is `false`; the conservative default keeps
    /// every existing sink (and every test sink) working unchanged.
    fn tracing(&self) -> bool {
        true
    }
    /// The run's causal lineage recorder paired with the identity of the
    /// hosted process, or `None` when lineage tracing is disabled. The
    /// default keeps every existing sink (and every test sink) working
    /// unchanged, and lets recording sites skip all lineage work with
    /// one branch.
    fn lineage(&mut self) -> Option<(&mut LineageRecorder, ProcId)> {
        None
    }
}

/// The attached process's side of the upcall interface.
///
/// Application processes attach [`NoUpcalls`]; IS-processes attach the
/// IS-protocol tasks from `cmi-core`.
pub trait UpcallHandler {
    /// `false` disables the whole upcall machinery (plain application
    /// process — no IS-reads are issued or recorded).
    fn active(&self) -> bool;

    /// `true` enables `pre_update` upcalls (IS-protocol variant 2,
    /// Fig. 2). Per the paper, variant 1 "disables the MCS-process
    /// `pre_update` upcalls, since it does not need them".
    fn wants_pre_update(&self) -> bool;

    /// `pre_update(x)` upcall: the replica of `var` is about to change;
    /// `pre_image` is the value the IS-process's read `r(x)s` just
    /// returned (condition (c)).
    fn pre_update(&mut self, var: VarId, pre_image: Option<Value>, sink: &mut dyn HostSink);

    /// `post_update(x,v)` upcall: the replica of `var` was just updated
    /// with `post_image` by a write of `writer`; the IS-process's read
    /// `r(x)v` has been issued and returned `post_image`.
    fn post_update(
        &mut self,
        var: VarId,
        post_image: Value,
        writer: ProcId,
        sink: &mut dyn HostSink,
    );

    /// Notification that a write call issued by the attached process
    /// itself has just been applied to the local replica (fires for both
    /// immediate and ordered/blocking writes). Not an upcall of the
    /// paper's interface — IS-processes use it to release forwarded
    /// pairs at the instant their `Propagate_in` write takes effect, so
    /// transmission order matches replica-update order (Lemma 1).
    fn own_write_applied(&mut self, var: VarId, val: Value, sink: &mut dyn HostSink) {
        let _ = (var, val, sink);
    }
}

/// Handler for plain application processes: upcalls disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoUpcalls;

impl UpcallHandler for NoUpcalls {
    fn active(&self) -> bool {
        false
    }

    fn wants_pre_update(&self) -> bool {
        false
    }

    fn pre_update(&mut self, _var: VarId, _pre: Option<Value>, _sink: &mut dyn HostSink) {
        unreachable!("pre_update on an inactive handler")
    }

    fn post_update(&mut self, _var: VarId, _v: Value, _w: ProcId, _sink: &mut dyn HostSink) {
        unreachable!("post_update on an inactive handler")
    }
}

/// One entry of the replica-update log kept at every MCS-process.
///
/// The log is the observable the paper's Causal Updating Property
/// (Property 1) and Lemma 1 talk about; the trace checks in `cmi-checker`
/// consume it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaUpdate {
    /// Variable updated.
    pub var: VarId,
    /// Value stored.
    pub val: Value,
    /// Process whose write caused the update.
    pub writer: ProcId,
    /// Virtual time of the update.
    pub at: SimTime,
}

/// An MCS-process plus the bookkeeping of its attached process.
pub struct NodeHost {
    protocol: Box<dyn McsProtocol>,
    ops: Vec<OpRecord>,
    updates: Vec<ReplicaUpdate>,
    write_in_flight: bool,
    /// Issue instant of the in-flight write (response-time metric and
    /// the operation's recorded interval).
    write_issued_at: SimTime,
    /// A blocking read call is outstanding (atomic memory).
    read_in_flight: bool,
    /// Issue instant of the in-flight read.
    read_issued_at: SimTime,
    /// Response time of every write call, in issue order. Zero for
    /// fast-write protocols (local application), the ordering round-trip
    /// for the sequencer protocol. The paper's Section 6 argues the
    /// interconnection "should not affect the response time a process
    /// observes"; experiment X5 measures exactly this vector.
    write_responses: Vec<std::time::Duration>,
}

impl fmt::Debug for NodeHost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeHost")
            .field("proc", &self.proc())
            .field("ops", &self.ops.len())
            .field("updates", &self.updates.len())
            .field("write_in_flight", &self.write_in_flight)
            .finish()
    }
}

impl NodeHost {
    /// Wraps a protocol instance.
    pub fn new(protocol: Box<dyn McsProtocol>) -> Self {
        NodeHost {
            protocol,
            ops: Vec::new(),
            updates: Vec::new(),
            write_in_flight: false,
            write_issued_at: SimTime::ZERO,
            read_in_flight: false,
            read_issued_at: SimTime::ZERO,
            write_responses: Vec::new(),
        }
    }

    /// The attached process / MCS-process identity.
    pub fn proc(&self) -> ProcId {
        self.protocol.proc()
    }

    /// Whether the protocol guarantees the Causal Updating Property;
    /// selects the IS-protocol variant.
    pub fn satisfies_causal_updating(&self) -> bool {
        self.protocol.satisfies_causal_updating()
    }

    /// `true` while a [`Pending`](WriteOutcome::Pending) write call of
    /// the attached process awaits completion; the attached process must
    /// not issue another operation until it clears (the paper's blocking
    /// write call).
    pub fn write_in_flight(&self) -> bool {
        self.write_in_flight
    }

    /// `true` while any memory call of the attached process is blocked
    /// (pending write, or pending atomic read).
    pub fn op_in_flight(&self) -> bool {
        self.write_in_flight || self.read_in_flight
    }

    /// Issues a read call by the attached process. Local protocols
    /// return the value immediately (and record the operation); atomic
    /// memory returns [`ReadOutcome::Pending`] and the operation is
    /// recorded, with its full `[issued, completed]` interval, when the
    /// value arrives.
    ///
    /// # Panics
    ///
    /// Panics if an operation is already in flight.
    pub fn issue_read(
        &mut self,
        var: VarId,
        sink: &mut dyn HostSink,
        handler: &mut dyn UpcallHandler,
    ) -> ReadOutcome {
        assert!(
            !self.op_in_flight(),
            "{}: read issued while an operation is in flight",
            self.proc()
        );
        let mut out = Outbox::new();
        let outcome = self.protocol.read_call(var, &mut out);
        match outcome {
            ReadOutcome::Done(v) => {
                self.ops
                    .push(OpRecord::read(self.proc(), var, v, sink.now()));
            }
            ReadOutcome::Pending => {
                self.read_in_flight = true;
                self.read_issued_at = sink.now();
            }
        }
        self.absorb_read_completion(&mut out, sink);
        self.flush(out, sink);
        self.drain(sink, handler);
        outcome
    }

    /// Records a completed blocking read, if the outbox carries one.
    fn absorb_read_completion(&mut self, out: &mut Outbox, sink: &mut dyn HostSink) {
        if let Some((var, val)) = out.completed_read.take() {
            assert!(
                self.read_in_flight,
                "{}: read completion without a pending read",
                self.proc()
            );
            self.read_in_flight = false;
            self.ops.push(
                OpRecord::read(self.proc(), var, val, sink.now())
                    .with_issued_at(self.read_issued_at),
            );
        }
    }

    /// Peeks at the local replica without recording an operation (for
    /// assertions and probes; not part of the DSM semantics).
    pub fn peek(&self, var: VarId) -> Option<Value> {
        self.protocol.read(var)
    }

    /// Issues a write call by the attached process.
    ///
    /// Fast-write protocols record the operation immediately; the
    /// sequencer protocol records it when the own ordered write is
    /// applied (and [`write_in_flight`](Self::write_in_flight) clears).
    ///
    /// # Panics
    ///
    /// Panics if a write is already in flight — write calls block, so
    /// the attached process can never have two outstanding.
    pub fn issue_write(
        &mut self,
        var: VarId,
        val: Value,
        sink: &mut dyn HostSink,
        handler: &mut dyn UpcallHandler,
    ) {
        assert!(
            !self.write_in_flight,
            "{}: write issued while another is in flight",
            self.proc()
        );
        let mut out = Outbox::new();
        match self.protocol.write(var, val, &mut out) {
            WriteOutcome::Done => {
                self.ops
                    .push(OpRecord::write(self.proc(), var, val, sink.now()));
                self.updates.push(ReplicaUpdate {
                    var,
                    val,
                    writer: self.proc(),
                    at: sink.now(),
                });
                self.write_responses.push(std::time::Duration::ZERO);
                let at = sink.now().as_nanos();
                let me = self.proc();
                if let Some((lin, _)) = sink.lineage() {
                    // Propagation re-writes carry a value originated
                    // elsewhere; only the origin's own write is an issue
                    // event (re-writes are recorded as `remote_written`
                    // by the IS-process before this call).
                    if val.origin() == me {
                        lin.issued(val.update_id(), at);
                    }
                    lin.applied(val.update_id(), me.system.0, me.index, at);
                }
                if handler.active() {
                    handler.own_write_applied(var, val, sink);
                }
            }
            WriteOutcome::Pending => {
                self.write_in_flight = true;
                self.write_issued_at = sink.now();
            }
        }
        self.flush(out, sink);
        self.drain(sink, handler);
    }

    /// Feeds a protocol message to the MCS-process and applies whatever
    /// becomes deliverable, firing upcalls per the contract.
    pub fn on_mcs_message(
        &mut self,
        from: ProcId,
        msg: McsMsg,
        sink: &mut dyn HostSink,
        handler: &mut dyn UpcallHandler,
    ) {
        let mut out = Outbox::new();
        self.protocol.on_message(from, msg, &mut out);
        self.absorb_read_completion(&mut out, sink);
        self.flush(out, sink);
        self.drain(sink, handler);
    }

    /// Operations recorded so far (program order of the attached
    /// process).
    pub fn ops(&self) -> &[OpRecord] {
        &self.ops
    }

    /// Consumes the recorded operations (end-of-run extraction).
    pub fn take_ops(&mut self) -> Vec<OpRecord> {
        std::mem::take(&mut self.ops)
    }

    /// The replica-update log of this MCS-process.
    pub fn updates(&self) -> &[ReplicaUpdate] {
        &self.updates
    }

    /// Received updates currently held back from the local replica
    /// (the protocol's causal-wait buffer depth).
    pub fn buffered(&self) -> usize {
        self.protocol.buffered()
    }

    /// Response time of every write call issued so far, in issue order.
    pub fn write_responses(&self) -> &[std::time::Duration] {
        &self.write_responses
    }

    fn flush(&mut self, out: Outbox, sink: &mut dyn HostSink) {
        debug_assert!(
            out.completed_write.is_none(),
            "write completion outside drain"
        );
        debug_assert!(out.completed_read.is_none(), "read completion not absorbed");
        for (to, msg) in out.sends {
            sink.send_mcs(to, msg);
        }
    }

    /// Applies every deliverable update, in order, with upcalls.
    fn drain(&mut self, sink: &mut dyn HostSink, handler: &mut dyn UpcallHandler) {
        let me = self.proc();
        while let Some(update) = self.protocol.next_applicable() {
            let remote = update.writer != me;
            let upcalls = remote && handler.active();
            if upcalls && handler.wants_pre_update() {
                // Pre_Propagate_out's read r(x)s — condition (c): it
                // returns the pre-image.
                let s = self.protocol.read(update.var);
                self.ops.push(OpRecord::read(me, update.var, s, sink.now()));
                if sink.tracing() {
                    sink.note(format!("pre_update({}) read {:?}", update.var, s));
                }
                handler.pre_update(update.var, s, sink);
            }
            let mut out = Outbox::new();
            self.protocol.apply(&update, &mut out);
            self.absorb_read_completion(&mut out, sink);
            {
                let at = sink.now().as_nanos();
                // A completed pending write (sequencer) is the origin's
                // own write coming back ordered: its issue event carries
                // the original issue instant, and must precede the apply
                // event in the record.
                let own_completed = out.completed_write.is_some() && update.val.origin() == me;
                let issued_at = self.write_issued_at.as_nanos();
                if let Some((lin, _)) = sink.lineage() {
                    if own_completed {
                        lin.issued(update.val.update_id(), issued_at);
                    }
                    lin.applied(update.val.update_id(), me.system.0, me.index, at);
                }
            }
            self.updates.push(ReplicaUpdate {
                var: update.var,
                val: update.val,
                writer: update.writer,
                at: sink.now(),
            });
            if let Some((var, val)) = out.completed_write.take() {
                assert!(
                    self.write_in_flight,
                    "{me}: completion without a pending write"
                );
                self.write_in_flight = false;
                self.write_responses
                    .push(sink.now().saturating_since(self.write_issued_at));
                self.ops.push(
                    OpRecord::write(me, var, val, sink.now()).with_issued_at(self.write_issued_at),
                );
                if handler.active() {
                    handler.own_write_applied(var, val, sink);
                }
            }
            self.flush(out, sink);
            if upcalls {
                // Propagate_out's read r(x)v — condition (c): it returns
                // the just-applied value.
                let v = self.protocol.read(update.var);
                debug_assert_eq!(v, Some(update.val), "condition (c) violated");
                self.ops.push(OpRecord::read(me, update.var, v, sink.now()));
                if sink.tracing() {
                    sink.note(format!("post_update({},{})", update.var, update.val));
                }
                handler.post_update(update.var, update.val, update.writer, sink);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ProtocolKind;
    use cmi_types::{OpKind, SystemId};

    /// Minimal sink collecting sends and notes at a fixed time.
    #[derive(Default)]
    struct TestSink {
        now: SimTime,
        sent: Vec<(ProcId, McsMsg)>,
        notes: Vec<String>,
    }

    impl HostSink for TestSink {
        fn now(&self) -> SimTime {
            self.now
        }

        fn send_mcs(&mut self, to: ProcId, msg: McsMsg) {
            self.sent.push((to, msg));
        }

        fn note(&mut self, text: String) {
            self.notes.push(text);
        }
    }

    /// Recording upcall handler.
    #[derive(Default)]
    struct Recorder {
        pre: Vec<(VarId, Option<Value>)>,
        post: Vec<(VarId, Value, ProcId)>,
        want_pre: bool,
    }

    impl UpcallHandler for Recorder {
        fn active(&self) -> bool {
            true
        }

        fn wants_pre_update(&self) -> bool {
            self.want_pre
        }

        fn pre_update(&mut self, var: VarId, pre: Option<Value>, _sink: &mut dyn HostSink) {
            self.pre.push((var, pre));
        }

        fn post_update(&mut self, var: VarId, v: Value, w: ProcId, _sink: &mut dyn HostSink) {
            self.post.push((var, v, w));
        }
    }

    fn proc(i: u16) -> ProcId {
        ProcId::new(SystemId(0), i)
    }

    fn host(kind: ProtocolKind, slot: u16, n: usize) -> NodeHost {
        NodeHost::new(kind.instantiate(SystemId(0), slot, n, 4))
    }

    #[test]
    fn own_write_records_op_and_update_but_no_upcall() {
        let mut h = host(ProtocolKind::Ahamad, 0, 2);
        let mut sink = TestSink::default();
        let mut handler = Recorder::default();
        let v = Value::new(proc(0), 1);
        h.issue_write(VarId(0), v, &mut sink, &mut handler);
        assert_eq!(h.ops().len(), 1);
        assert!(h.ops()[0].kind.is_write());
        assert_eq!(h.updates().len(), 1);
        assert_eq!(h.updates()[0].writer, proc(0));
        assert!(handler.pre.is_empty());
        assert!(handler.post.is_empty(), "no upcall for own writes");
        assert_eq!(sink.sent.len(), 1);
    }

    #[test]
    fn remote_write_fires_post_upcall_with_recorded_read() {
        let mut writer = host(ProtocolKind::Ahamad, 0, 2);
        let mut isp = host(ProtocolKind::Ahamad, 1, 2);
        let mut sink = TestSink::default();
        let mut none = NoUpcalls;
        let v = Value::new(proc(0), 1);
        writer.issue_write(VarId(2), v, &mut sink, &mut none);
        let (to, msg) = sink.sent.remove(0);
        assert_eq!(to, proc(1));

        let mut handler = Recorder::default();
        sink.now = SimTime::from_millis(5);
        isp.on_mcs_message(proc(0), msg, &mut sink, &mut handler);
        // post_update(x,v) fired with the new value and true writer.
        assert_eq!(handler.post, vec![(VarId(2), v, proc(0))]);
        assert!(handler.pre.is_empty(), "variant 1: pre disabled");
        // The Propagate_out read r(x)v was recorded as an isp operation.
        assert_eq!(isp.ops().len(), 1);
        match isp.ops()[0].kind {
            OpKind::Read { value } => assert_eq!(value, Some(v)),
            _ => panic!("expected a read"),
        }
        assert_eq!(isp.ops()[0].at, SimTime::from_millis(5));
    }

    #[test]
    fn pre_upcall_reads_pre_image_when_enabled() {
        let mut writer = host(ProtocolKind::Ahamad, 0, 2);
        let mut isp = host(ProtocolKind::Ahamad, 1, 2);
        let mut sink = TestSink::default();
        let mut none = NoUpcalls;
        let v1 = Value::new(proc(0), 1);
        let v2 = Value::new(proc(0), 2);
        writer.issue_write(VarId(0), v1, &mut sink, &mut none);
        writer.issue_write(VarId(0), v2, &mut sink, &mut none);
        let m1 = sink.sent.remove(0).1;
        let m2 = sink.sent.remove(0).1;

        let mut handler = Recorder {
            want_pre: true,
            ..Recorder::default()
        };
        isp.on_mcs_message(proc(0), m1, &mut sink, &mut handler);
        isp.on_mcs_message(proc(0), m2, &mut sink, &mut handler);
        // Pre-images: ⊥ before v1, v1 before v2 (condition (c)).
        assert_eq!(handler.pre, vec![(VarId(0), None), (VarId(0), Some(v1))]);
        assert_eq!(handler.post.len(), 2);
        // Four isp reads recorded: r(x)⊥, r(x)v1, r(x)v1, r(x)v2.
        let reads: Vec<Option<Value>> = isp
            .ops()
            .iter()
            .map(|o| o.read_value().expect("all reads"))
            .collect();
        assert_eq!(reads, vec![None, Some(v1), Some(v1), Some(v2)]);
    }

    #[test]
    fn plain_app_node_records_no_upcall_reads() {
        let mut writer = host(ProtocolKind::Ahamad, 0, 2);
        let mut app = host(ProtocolKind::Ahamad, 1, 2);
        let mut sink = TestSink::default();
        let mut none = NoUpcalls;
        let v = Value::new(proc(0), 1);
        writer.issue_write(VarId(0), v, &mut sink, &mut none);
        let msg = sink.sent.remove(0).1;
        app.on_mcs_message(proc(0), msg, &mut sink, &mut none);
        assert!(app.ops().is_empty(), "no spurious reads at app nodes");
        assert_eq!(app.updates().len(), 1, "update still logged");
        assert_eq!(app.peek(VarId(0)), Some(v));
    }

    #[test]
    fn sequencer_write_blocks_then_completes_in_program_order() {
        // Slot 0 is the sequencer; the host under test is slot 1.
        let mut seq = host(ProtocolKind::Sequencer, 0, 2);
        let mut h = host(ProtocolKind::Sequencer, 1, 2);
        let mut sink = TestSink::default();
        let mut none = NoUpcalls;
        let v = Value::new(proc(1), 1);
        h.issue_write(VarId(0), v, &mut sink, &mut none);
        assert!(h.write_in_flight());
        assert!(h.ops().is_empty(), "not recorded until ordered");
        let req = sink.sent.remove(0).1;
        seq.on_mcs_message(proc(1), req, &mut sink, &mut none);
        let ordered = sink.sent.remove(0).1;
        sink.now = SimTime::from_millis(3);
        h.on_mcs_message(proc(0), ordered, &mut sink, &mut none);
        assert!(!h.write_in_flight());
        assert_eq!(h.ops().len(), 1);
        assert!(h.ops()[0].kind.is_write());
        assert_eq!(h.ops()[0].at, SimTime::from_millis(3));
    }

    #[test]
    #[should_panic(expected = "while another is in flight")]
    fn double_pending_write_panics() {
        let mut h = host(ProtocolKind::Sequencer, 1, 2);
        let mut sink = TestSink::default();
        let mut none = NoUpcalls;
        h.issue_write(VarId(0), Value::new(proc(1), 1), &mut sink, &mut none);
        h.issue_write(VarId(0), Value::new(proc(1), 2), &mut sink, &mut none);
    }

    #[test]
    fn issue_read_records_and_returns_replica_value() {
        let mut h = host(ProtocolKind::Frontier, 0, 2);
        let mut sink = TestSink::default();
        let mut none = NoUpcalls;
        assert_eq!(
            h.issue_read(VarId(1), &mut sink, &mut none),
            ReadOutcome::Done(None)
        );
        let v = Value::new(proc(0), 1);
        h.issue_write(VarId(1), v, &mut sink, &mut none);
        assert_eq!(
            h.issue_read(VarId(1), &mut sink, &mut none),
            ReadOutcome::Done(Some(v))
        );
        assert_eq!(h.ops().len(), 3);
        assert_eq!(h.take_ops().len(), 3);
        assert!(h.ops().is_empty());
    }

    #[test]
    fn update_log_tracks_causal_application_order() {
        let mut w = host(ProtocolKind::Ahamad, 0, 3);
        let mut h = host(ProtocolKind::Ahamad, 2, 3);
        let mut sink = TestSink::default();
        let mut none = NoUpcalls;
        let v1 = Value::new(proc(0), 1);
        let v2 = Value::new(proc(0), 2);
        w.issue_write(VarId(0), v1, &mut sink, &mut none);
        w.issue_write(VarId(1), v2, &mut sink, &mut none);
        // Deliver out of order; the log must still show causal order.
        let msgs: Vec<_> = sink.sent.drain(..).collect();
        let to_h: Vec<_> = msgs.into_iter().filter(|(t, _)| *t == proc(2)).collect();
        h.on_mcs_message(proc(0), to_h[1].1.clone(), &mut sink, &mut none);
        h.on_mcs_message(proc(0), to_h[0].1.clone(), &mut sink, &mut none);
        let log = h.updates();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].val, v1);
        assert_eq!(log[1].val, v2);
    }
}
