//! The MCS protocol abstraction shared by all memory implementations.

use std::fmt;

use cmi_types::{ProcId, SystemId, Value, VarId};

use crate::msg::McsMsg;

/// Result of issuing a write call to an MCS-process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The write was applied locally and acknowledged immediately
    /// (fast-write protocols: Ahamad, frontier, eager).
    Done,
    /// The write is in flight; the protocol will report its application
    /// through [`Outbox::completed_write`] once it is ordered
    /// (sequencer protocol). The issuing process blocks until then.
    Pending,
}

/// Result of issuing a read call to an MCS-process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The read was served from the local replica immediately (every
    /// protocol except atomic memory).
    Done(Option<Value>),
    /// The read is in flight; the protocol will report its value through
    /// [`Outbox::complete_read`]. The issuing process blocks until then
    /// (atomic memory's reads round-trip to the serialization point).
    Pending,
}

/// A remote write the protocol is ready to apply to the local replica.
///
/// The host drains these via [`McsProtocol::next_applicable`] and calls
/// [`McsProtocol::apply`] for each, firing the paper's
/// `pre_update`/`post_update` upcalls around the application when an
/// IS-process is attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingUpdate {
    /// Variable to update.
    pub var: VarId,
    /// Value to store.
    pub val: Value,
    /// The process whose *write call* caused this update. Upcalls fire
    /// exactly when this differs from the host's attached process.
    pub writer: ProcId,
    /// Protocol-private bookkeeping carried from gating to application.
    pub meta: UpdateMeta,
}

/// Protocol-private metadata of a pending update.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateMeta {
    /// No metadata.
    None,
    /// Ahamad: the writer's slot and clock component to adopt.
    Ahamad {
        /// In-system slot of the writer.
        slot: usize,
        /// Writer's clock component after the write.
        count: u32,
    },
    /// Frontier: the writer's per-writer sequence number.
    Frontier {
        /// 1-based per-writer write counter.
        seq: u64,
    },
    /// Sequencer: global order position.
    Seq {
        /// 1-based dense global order.
        seq: u64,
    },
}

/// Messages and signals produced while handling one protocol event.
///
/// The host drains the outbox after each call: `sends` become simulator
/// messages, `completed_write` completes the attached process's blocked
/// write call.
#[derive(Debug, Default)]
pub struct Outbox {
    /// Messages to transmit, in order.
    pub sends: Vec<(ProcId, McsMsg)>,
    /// A previously [`Pending`](WriteOutcome::Pending) write call of the
    /// attached process that has now taken effect.
    pub completed_write: Option<(VarId, Value)>,
    /// A previously [`Pending`](ReadOutcome::Pending) read call of the
    /// attached process whose value has arrived.
    pub completed_read: Option<(VarId, Option<Value>)>,
}

impl Outbox {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Outbox::default()
    }

    /// Queues a message to `to`.
    pub fn send(&mut self, to: ProcId, msg: McsMsg) {
        self.sends.push((to, msg));
    }

    /// Signals completion of the attached process's blocked write.
    ///
    /// # Panics
    ///
    /// Panics if a completion is already queued — at most one write of
    /// the attached process can be in flight.
    pub fn complete_write(&mut self, var: VarId, val: Value) {
        assert!(
            self.completed_write.is_none(),
            "two write completions in one protocol event"
        );
        self.completed_write = Some((var, val));
    }

    /// Signals completion of the attached process's blocked read.
    ///
    /// # Panics
    ///
    /// Panics if a read completion is already queued.
    pub fn complete_read(&mut self, var: VarId, val: Option<Value>) {
        assert!(
            self.completed_read.is_none(),
            "two read completions in one protocol event"
        );
        self.completed_read = Some((var, val));
    }

    /// `true` if nothing was produced.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty() && self.completed_write.is_none() && self.completed_read.is_none()
    }
}

/// One MCS-process: the per-process half of a propagation-based memory
/// consistency protocol (Attiya–Welch architecture, paper Section 2).
///
/// Invariants every implementation upholds:
///
/// * it holds a local replica of **every** shared variable, so
///   [`read`](McsProtocol::read) is local and immediate (required for the
///   IS-process reads during upcalls to terminate — condition (b));
/// * every write issued anywhere in the system is eventually surfaced
///   through [`next_applicable`](McsProtocol::next_applicable) at every
///   other process (propagation, not invalidation);
/// * the *local* process's own writes are applied inside
///   [`write`](McsProtocol::write) (fast-write protocols) or surfaced as
///   a pending update whose `writer` is the local process (sequencer) —
///   the host uses `writer` to suppress upcalls for own writes.
pub trait McsProtocol: fmt::Debug {
    /// The process this MCS-process serves.
    fn proc(&self) -> ProcId;

    /// Current local replica value of `var` (`None` = initial `⊥`).
    fn read(&self, var: VarId) -> Option<Value>;

    /// Issues a write call `w(var)val` by the attached process.
    fn write(&mut self, var: VarId, val: Value, out: &mut Outbox) -> WriteOutcome;

    /// Issues a read call by the attached process. Defaults to the local
    /// replica ([`read`](McsProtocol::read)); atomic memory overrides
    /// this with a blocking round-trip. The IS-process upcall reads
    /// always use the local [`read`](McsProtocol::read), which every
    /// protocol must keep immediate (the paper's condition (b)).
    fn read_call(&mut self, var: VarId, out: &mut Outbox) -> ReadOutcome {
        let _ = out;
        ReadOutcome::Done(self.read(var))
    }

    /// Handles a protocol message from `from`.
    fn on_message(&mut self, from: ProcId, msg: McsMsg, out: &mut Outbox);

    /// Pops the next update that may be applied to the local replicas,
    /// if any. The host calls this in a loop after `write`/`on_message`.
    fn next_applicable(&mut self) -> Option<PendingUpdate>;

    /// Applies a popped update to the local replica (and performs any
    /// clock bookkeeping). Must be called exactly once per popped update,
    /// in pop order.
    fn apply(&mut self, update: &PendingUpdate, out: &mut Outbox);

    /// Whether this protocol guarantees the paper's Causal Updating
    /// Property (Property 1). Decides which IS-protocol variant the
    /// IS-process runs: `true` → Fig. 1 (no `pre_update` upcalls),
    /// `false` → Fig. 1 + Fig. 2 (`Pre_Propagate_out`).
    fn satisfies_causal_updating(&self) -> bool;

    /// Whether the protocol implements a causal (or stronger) memory.
    /// `false` only for deliberately faulty test protocols.
    fn is_causal(&self) -> bool {
        true
    }

    /// Number of received updates currently held back from the local
    /// replica (causally or sequence-order undeliverable). Protocols
    /// with no hold-back buffer report zero.
    fn buffered(&self) -> usize {
        0
    }
}

/// Protocol selector used by system builders and experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Vector-clock causal memory (paper ref \[2\]).
    Ahamad,
    /// Dependency-frontier causal memory (in the spirit of ref \[6\]).
    Frontier,
    /// Sequencer-ordered local-read protocol — sequential consistency
    /// (paper ref \[3\]). Process with in-system index 0 is the sequencer.
    Sequencer,
    /// Sequencer-ordered protocol with blocking reads — atomic
    /// (linearizable) memory, the "stronger-than-causal" model of the
    /// paper's Section 1.1 remark.
    Atomic,
    /// Eager apply-on-receipt protocol — PRAM (pipelined-RAM / FIFO)
    /// consistency, **not** causal; used as the PRAM representative in
    /// the model-hierarchy experiments and as a checker fixture.
    EagerFifo,
    /// Per-variable sequencer — cache consistency (the cache
    /// instantiation of the paper's ref \[6\]), **not** causal.
    VarSeq,
}

impl ProtocolKind {
    /// All causal (or stronger) protocol kinds.
    pub const CAUSAL_KINDS: [ProtocolKind; 4] = [
        ProtocolKind::Ahamad,
        ProtocolKind::Frontier,
        ProtocolKind::Sequencer,
        ProtocolKind::Atomic,
    ];

    /// Instantiates the MCS-process for slot `index` of a system with
    /// `n_procs` MCS-processes and `n_vars` shared variables.
    ///
    /// # Example
    ///
    /// ```
    /// use cmi_memory::{McsProtocol, ProtocolKind};
    /// use cmi_types::{SystemId, VarId};
    ///
    /// let mcs = ProtocolKind::Ahamad.instantiate(SystemId(0), 1, 3, 4);
    /// assert_eq!(mcs.read(VarId(0)), None); // all replicas start at ⊥
    /// assert!(mcs.satisfies_causal_updating());
    /// ```
    pub fn instantiate(
        self,
        system: SystemId,
        index: u16,
        n_procs: usize,
        n_vars: usize,
    ) -> Box<dyn McsProtocol> {
        let me = ProcId::new(system, index);
        match self {
            ProtocolKind::Ahamad => Box::new(crate::ahamad::AhamadCausal::new(me, n_procs, n_vars)),
            ProtocolKind::Frontier => {
                Box::new(crate::frontier::DepFrontier::new(me, n_procs, n_vars))
            }
            ProtocolKind::Sequencer => {
                Box::new(crate::sequencer::Sequencer::new(me, n_procs, n_vars))
            }
            ProtocolKind::Atomic => Box::new(crate::atomic::Atomic::new(me, n_procs, n_vars)),
            ProtocolKind::EagerFifo => Box::new(crate::eager::EagerFifo::new(me, n_procs, n_vars)),
            ProtocolKind::VarSeq => Box::new(crate::varseq::VarSeq::new(me, n_procs, n_vars)),
        }
    }

    /// `true` for protocols implementing causal (or stronger) memory.
    pub fn is_causal(self) -> bool {
        !matches!(self, ProtocolKind::EagerFifo | ProtocolKind::VarSeq)
    }

    /// Whether the protocol guarantees the Causal Updating Property
    /// (mirrors [`McsProtocol::satisfies_causal_updating`]).
    pub fn satisfies_causal_updating(self) -> bool {
        self.is_causal()
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ProtocolKind::Ahamad => "ahamad",
            ProtocolKind::Frontier => "frontier",
            ProtocolKind::Sequencer => "sequencer",
            ProtocolKind::Atomic => "atomic",
            ProtocolKind::EagerFifo => "eager-fifo",
            ProtocolKind::VarSeq => "var-seq",
        };
        f.write_str(name)
    }
}

/// Local replica array shared by the protocol implementations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Replicas {
    slots: Vec<Option<Value>>,
}

impl Replicas {
    pub(crate) fn new(n_vars: usize) -> Self {
        Replicas {
            slots: vec![None; n_vars],
        }
    }

    pub(crate) fn read(&self, var: VarId) -> Option<Value> {
        self.slots
            .get(var.index())
            .copied()
            .unwrap_or_else(|| panic!("variable {var} out of range"))
    }

    pub(crate) fn store(&mut self, var: VarId, val: Value) {
        let slot = self
            .slots
            .get_mut(var.index())
            .unwrap_or_else(|| panic!("variable {var} out of range"));
        *slot = Some(val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicas_start_at_bottom_and_store_values() {
        let p = ProcId::new(SystemId(0), 0);
        let mut r = Replicas::new(2);
        assert_eq!(r.read(VarId(0)), None);
        let v = Value::new(p, 1);
        r.store(VarId(1), v);
        assert_eq!(r.read(VarId(1)), Some(v));
        assert_eq!(r.read(VarId(0)), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_variable_panics() {
        let r = Replicas::new(1);
        let _ = r.read(VarId(5));
    }

    #[test]
    fn outbox_collects_sends_and_completion() {
        let p = ProcId::new(SystemId(0), 1);
        let mut out = Outbox::new();
        assert!(out.is_empty());
        out.send(
            p,
            McsMsg::EagerUpdate {
                var: VarId(0),
                val: Value::new(p, 1),
            },
        );
        out.complete_write(VarId(0), Value::new(p, 1));
        assert!(!out.is_empty());
        assert_eq!(out.sends.len(), 1);
        assert!(out.completed_write.is_some());
    }

    #[test]
    #[should_panic(expected = "two write completions")]
    fn double_completion_panics() {
        let p = ProcId::new(SystemId(0), 1);
        let mut out = Outbox::new();
        out.complete_write(VarId(0), Value::new(p, 1));
        out.complete_write(VarId(0), Value::new(p, 2));
    }

    #[test]
    fn kind_factory_builds_each_protocol() {
        for kind in [
            ProtocolKind::Ahamad,
            ProtocolKind::Frontier,
            ProtocolKind::Sequencer,
            ProtocolKind::EagerFifo,
            ProtocolKind::VarSeq,
        ] {
            let p = kind.instantiate(SystemId(0), 1, 3, 4);
            assert_eq!(p.proc(), ProcId::new(SystemId(0), 1));
            assert_eq!(p.read(VarId(0)), None);
            assert_eq!(kind.is_causal(), p.is_causal());
        }
    }

    #[test]
    fn causal_kinds_exclude_the_faulty_protocol() {
        assert!(!ProtocolKind::CAUSAL_KINDS.contains(&ProtocolKind::EagerFifo));
        assert!(ProtocolKind::EagerFifo.to_string().contains("eager"));
    }
}
