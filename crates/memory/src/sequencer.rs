//! Sequencer-ordered local-read protocol — *sequential* consistency in
//! the style of Attiya & Welch's local-read algorithm (the paper's
//! reference \[3\]).
//!
//! All writes are funnelled through the MCS-process with in-system index
//! 0 (the *sequencer*), which assigns a dense global order; every process
//! applies writes in that order. A write call blocks until the writer
//! applies its own ordered write; reads are local. The resulting memory
//! is sequentially consistent — in particular causal — so the paper's
//! IS-protocols can interconnect two such systems (Section 1.1), although
//! the union is only guaranteed to be *causal*, which experiment X8
//! demonstrates.
//!
//! The total order extends the causal order (a causally later write can
//! only be requested after its predecessor was applied at the requester),
//! so applying writes in sequence order satisfies the Causal Updating
//! Property.

use std::collections::BTreeMap;
use std::fmt;

use cmi_types::{ProcId, Value, VarId};

use crate::msg::McsMsg;
use crate::protocol::{McsProtocol, Outbox, PendingUpdate, Replicas, UpdateMeta, WriteOutcome};

/// In-system index of the sequencer MCS-process.
pub const SEQUENCER_SLOT: u16 = 0;

/// One MCS-process of the sequencer protocol.
pub struct Sequencer {
    me: ProcId,
    n_procs: usize,
    replicas: Replicas,
    /// Next order number to assign (sequencer only).
    next_order: u64,
    /// Highest order number applied locally.
    applied_seq: u64,
    /// Ordered writes waiting for their predecessors, keyed by order.
    buffer: BTreeMap<u64, (VarId, Value, ProcId)>,
}

impl Sequencer {
    /// Creates the MCS-process `me` of a system with `n_procs`
    /// MCS-processes and `n_vars` shared variables.
    pub fn new(me: ProcId, n_procs: usize, n_vars: usize) -> Self {
        assert!(me.slot() < n_procs, "process slot out of range");
        Sequencer {
            me,
            n_procs,
            replicas: Replicas::new(n_vars),
            next_order: 0,
            applied_seq: 0,
            buffer: BTreeMap::new(),
        }
    }

    /// `true` if this process is the system's sequencer.
    pub fn is_sequencer(&self) -> bool {
        self.me.index == SEQUENCER_SLOT
    }

    /// Highest order number applied locally (test hook).
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    fn sequencer_proc(&self) -> ProcId {
        ProcId::new(self.me.system, SEQUENCER_SLOT)
    }

    /// Assigns the next order number to `⟨var,val⟩` by `writer`,
    /// broadcasts it to every other process and enqueues it locally.
    fn order(&mut self, var: VarId, val: Value, writer: ProcId, out: &mut Outbox) {
        debug_assert!(self.is_sequencer());
        self.next_order += 1;
        let seq = self.next_order;
        for k in 0..self.n_procs {
            let peer = ProcId::new(self.me.system, k as u16);
            if peer != self.me {
                out.send(
                    peer,
                    McsMsg::SeqOrdered {
                        var,
                        val,
                        writer,
                        seq,
                    },
                );
            }
        }
        self.buffer.insert(seq, (var, val, writer));
    }
}

impl fmt::Debug for Sequencer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sequencer")
            .field("me", &self.me)
            .field("applied_seq", &self.applied_seq)
            .field("buffered", &self.buffer.len())
            .finish()
    }
}

impl McsProtocol for Sequencer {
    fn buffered(&self) -> usize {
        self.buffer.len()
    }

    fn proc(&self) -> ProcId {
        self.me
    }

    fn read(&self, var: VarId) -> Option<Value> {
        self.replicas.read(var)
    }

    fn write(&mut self, var: VarId, val: Value, out: &mut Outbox) -> WriteOutcome {
        if self.is_sequencer() {
            self.order(var, val, self.me, out);
        } else {
            out.send(self.sequencer_proc(), McsMsg::SeqRequest { var, val });
        }
        WriteOutcome::Pending
    }

    fn on_message(&mut self, from: ProcId, msg: McsMsg, out: &mut Outbox) {
        match msg {
            McsMsg::SeqRequest { var, val } => {
                assert!(self.is_sequencer(), "SeqRequest sent to non-sequencer");
                self.order(var, val, from, out);
            }
            McsMsg::SeqOrdered {
                var,
                val,
                writer,
                seq,
            } => {
                assert!(!self.is_sequencer() || writer == self.me);
                self.buffer.insert(seq, (var, val, writer));
            }
            other => panic!("Sequencer received foreign message {other:?}"),
        }
    }

    fn next_applicable(&mut self) -> Option<PendingUpdate> {
        let next = self.applied_seq + 1;
        let (var, val, writer) = self.buffer.remove(&next)?;
        Some(PendingUpdate {
            var,
            val,
            writer,
            meta: UpdateMeta::Seq { seq: next },
        })
    }

    fn apply(&mut self, update: &PendingUpdate, out: &mut Outbox) {
        let UpdateMeta::Seq { seq } = update.meta else {
            panic!("Sequencer asked to apply foreign update {update:?}");
        };
        debug_assert_eq!(self.applied_seq + 1, seq, "applied out of total order");
        self.applied_seq = seq;
        self.replicas.store(update.var, update.val);
        if update.writer == self.me {
            out.complete_write(update.var, update.val);
        }
    }

    fn satisfies_causal_updating(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmi_types::SystemId;

    fn proc(i: u16) -> ProcId {
        ProcId::new(SystemId(0), i)
    }

    fn drain(p: &mut Sequencer) -> (Vec<Value>, Vec<(VarId, Value)>) {
        let mut vals = Vec::new();
        let mut completions = Vec::new();
        while let Some(u) = p.next_applicable() {
            let mut out = Outbox::new();
            p.apply(&u, &mut out);
            vals.push(u.val);
            if let Some(c) = out.completed_write {
                completions.push(c);
            }
        }
        (vals, completions)
    }

    #[test]
    fn sequencer_write_orders_broadcasts_and_completes() {
        let mut s = Sequencer::new(proc(0), 3, 1);
        let mut out = Outbox::new();
        let v = Value::new(proc(0), 1);
        assert_eq!(s.write(VarId(0), v, &mut out), WriteOutcome::Pending);
        assert_eq!(out.sends.len(), 2);
        assert!(matches!(out.sends[0].1, McsMsg::SeqOrdered { seq: 1, .. }));
        // The write completes when the sequencer applies its own order.
        let (vals, completions) = drain(&mut s);
        assert_eq!(vals, vec![v]);
        assert_eq!(completions, vec![(VarId(0), v)]);
        assert_eq!(s.read(VarId(0)), Some(v));
    }

    #[test]
    fn non_sequencer_write_round_trips_through_sequencer() {
        let mut s0 = Sequencer::new(proc(0), 2, 1);
        let mut s1 = Sequencer::new(proc(1), 2, 1);
        let v = Value::new(proc(1), 1);
        let mut out = Outbox::new();
        assert_eq!(s1.write(VarId(0), v, &mut out), WriteOutcome::Pending);
        assert_eq!(s1.read(VarId(0)), None, "blocked write not yet visible");
        let (to, req) = out.sends.remove(0);
        assert_eq!(to, proc(0));
        let mut out0 = Outbox::new();
        s0.on_message(proc(1), req, &mut out0);
        // Sequencer applies and relays the ordered write.
        let (vals0, comp0) = drain(&mut s0);
        assert_eq!(vals0, vec![v]);
        assert!(comp0.is_empty(), "not the writer");
        let (_, ordered) = out0.sends.remove(0);
        s1.on_message(proc(0), ordered, &mut Outbox::new());
        let (vals1, comp1) = drain(&mut s1);
        assert_eq!(vals1, vec![v]);
        assert_eq!(comp1, vec![(VarId(0), v)], "writer's call completes");
        assert_eq!(s1.read(VarId(0)), Some(v));
    }

    #[test]
    fn ordered_writes_apply_in_sequence_even_if_reordered() {
        let mut s1 = Sequencer::new(proc(1), 3, 1);
        let a = Value::new(proc(0), 1);
        let b = Value::new(proc(2), 1);
        let m1 = McsMsg::SeqOrdered {
            var: VarId(0),
            val: a,
            writer: proc(0),
            seq: 1,
        };
        let m2 = McsMsg::SeqOrdered {
            var: VarId(0),
            val: b,
            writer: proc(2),
            seq: 2,
        };
        s1.on_message(proc(0), m2, &mut Outbox::new());
        assert!(drain(&mut s1).0.is_empty(), "seq 2 waits for seq 1");
        s1.on_message(proc(0), m1, &mut Outbox::new());
        assert_eq!(drain(&mut s1).0, vec![a, b]);
        assert_eq!(s1.applied_seq(), 2);
    }

    #[test]
    fn reports_causal_updating_and_causality() {
        let s = Sequencer::new(proc(1), 2, 1);
        assert!(s.satisfies_causal_updating());
        assert!(s.is_causal());
        assert!(!s.is_sequencer());
        assert!(Sequencer::new(proc(0), 2, 1).is_sequencer());
    }
}
