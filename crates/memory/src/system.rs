//! Assembly of one standalone DSM system in the simulator.
//!
//! [`SingleSystem`] wires `n` MCS-processes of one protocol into a full
//! mesh of FIFO channels, attaches a workload driver to each, runs the
//! simulation to quiescence and extracts the observed computation. It is
//! the baseline configuration of the paper's Section 6 (one global
//! system running a single causal MCS-protocol) and the building block
//! the interconnection harness in `cmi-core` mirrors.

use std::any::Any;
use std::collections::HashMap;
use std::time::Duration;

use cmi_sim::rng::derive_rng;
use cmi_sim::{
    Actor, ActorId, ChannelSpec, Ctx, NetworkTag, RunLimit, RunOutcome, Sim, SimBuilder,
};
use cmi_types::{History, ProcId, SystemId};

use crate::msg::McsMsg;
use crate::node::{HostSink, NoUpcalls, NodeHost};
use crate::protocol::ProtocolKind;
use crate::workload::{Driver, OpPlan, WorkloadDriver, WorkloadSpec};

/// Static description of one DSM system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// System identity.
    pub id: SystemId,
    /// MCS protocol every process of this system runs.
    pub protocol: ProtocolKind,
    /// Number of application processes (= MCS-processes in a standalone
    /// system; the interconnection adds IS-process slots on top).
    pub n_procs: usize,
    /// Number of shared variables.
    pub n_vars: usize,
    /// Channel spec of the full mesh between the system's MCS-processes.
    pub intra: ChannelSpec,
}

impl SystemConfig {
    /// A system with `n_procs` processes of `protocol`, 4 variables and a
    /// 1 ms intra-system delay.
    pub fn new(id: SystemId, protocol: ProtocolKind, n_procs: usize) -> Self {
        SystemConfig {
            id,
            protocol,
            n_procs,
            n_vars: 4,
            intra: ChannelSpec::fixed(Duration::from_millis(1)),
        }
    }

    /// Sets the variable count.
    pub fn with_vars(mut self, n_vars: usize) -> Self {
        self.n_vars = n_vars;
        self
    }

    /// Sets the intra-system channel spec.
    pub fn with_intra(mut self, intra: ChannelSpec) -> Self {
        self.intra = intra;
        self
    }
}

/// Timer token used by workload drivers.
const OP_TIMER: u64 = 0;

/// [`HostSink`] adapter translating process ids to actor ids over the
/// simulator context.
pub(crate) struct CtxSink<'a, 'b> {
    pub(crate) ctx: &'a mut Ctx<'b, McsMsg>,
    pub(crate) addr: &'a HashMap<ProcId, ActorId>,
}

impl HostSink for CtxSink<'_, '_> {
    fn now(&self) -> cmi_types::SimTime {
        self.ctx.now()
    }

    fn send_mcs(&mut self, to: ProcId, msg: McsMsg) {
        let actor = *self
            .addr
            .get(&to)
            .unwrap_or_else(|| panic!("no actor registered for {to}"));
        self.ctx.send(actor, msg);
    }

    fn note(&mut self, text: String) {
        self.ctx.note(text);
    }

    fn tracing(&self) -> bool {
        self.ctx.tracing()
    }
}

/// Simulator actor hosting one MCS-process and its application workload
/// (randomized or scripted).
pub struct McsActor {
    host: NodeHost,
    driver: Option<Driver>,
    pending_plan: Option<OpPlan>,
    addr: HashMap<ProcId, ActorId>,
    waiting_completion: bool,
}

impl McsActor {
    /// Creates an actor around `host`; `driver` is `None` for passive
    /// processes.
    pub fn new(host: NodeHost, driver: Option<Driver>, addr: HashMap<ProcId, ActorId>) -> Self {
        McsActor {
            host,
            driver,
            pending_plan: None,
            addr,
            waiting_completion: false,
        }
    }

    /// The hosted node (history extraction).
    pub fn host(&self) -> &NodeHost {
        &self.host
    }

    /// Mutable access to the hosted node (history extraction).
    pub fn host_mut(&mut self) -> &mut NodeHost {
        &mut self.host
    }

    fn fetch_and_schedule(&mut self, ctx: &mut Ctx<'_, McsMsg>) {
        let Some(driver) = self.driver.as_mut() else {
            return;
        };
        if let Some((gap, plan)) = driver.next() {
            self.pending_plan = Some(plan);
            ctx.schedule(gap, OP_TIMER);
        }
    }
}

impl Actor<McsMsg> for McsActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, McsMsg>) {
        self.fetch_and_schedule(ctx);
    }

    fn on_message(&mut self, from: ActorId, msg: McsMsg, ctx: &mut Ctx<'_, McsMsg>) {
        let from_proc = *self
            .addr
            .iter()
            .find(|(_, a)| **a == from)
            .map(|(p, _)| p)
            .unwrap_or_else(|| panic!("message from unknown actor {from}"));
        let mut sink = CtxSink {
            ctx,
            addr: &self.addr,
        };
        self.host
            .on_mcs_message(from_proc, msg, &mut sink, &mut NoUpcalls);
        if self.waiting_completion && !self.host.op_in_flight() {
            self.waiting_completion = false;
            self.fetch_and_schedule(ctx);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, McsMsg>) {
        debug_assert_eq!(token, OP_TIMER);
        let Some(plan) = self.pending_plan.take() else {
            return;
        };
        let mut sink = CtxSink {
            ctx,
            addr: &self.addr,
        };
        match plan {
            OpPlan::Read(var) => {
                self.host.issue_read(var, &mut sink, &mut NoUpcalls);
            }
            OpPlan::Write(var, val) => {
                self.host.issue_write(var, val, &mut sink, &mut NoUpcalls);
            }
        }
        if self.host.op_in_flight() {
            // Blocking call: resume when the protocol completes it.
            self.waiting_completion = true;
        } else {
            self.fetch_and_schedule(ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// One standalone DSM system, ready to run.
pub struct SingleSystem {
    sim: Sim<McsMsg>,
    actors: Vec<ActorId>,
    config: SystemConfig,
}

impl SingleSystem {
    /// Builds the system: one actor per process, full-mesh channels, a
    /// workload driver on every process.
    ///
    /// # Example
    ///
    /// ```
    /// use cmi_memory::{ProtocolKind, SingleSystem, SystemConfig, WorkloadSpec};
    /// use cmi_types::SystemId;
    ///
    /// let config = SystemConfig::new(SystemId(0), ProtocolKind::Ahamad, 3);
    /// let mut sys = SingleSystem::build(config, &WorkloadSpec::small(), 7);
    /// assert!(sys.run().is_quiescent());
    /// let history = sys.history();
    /// assert_eq!(history.len(), 3 * 8); // every op completed and recorded
    /// ```
    pub fn build(config: SystemConfig, workload: &WorkloadSpec, seed: u64) -> Self {
        let mut b = SimBuilder::new(seed);
        let tag = NetworkTag(config.id.0);
        // Pre-compute the address map (actor ids are dense from 0).
        let addr: HashMap<ProcId, ActorId> = (0..config.n_procs)
            .map(|k| (ProcId::new(config.id, k as u16), ActorId(k as u32)))
            .collect();
        let mut actors = Vec::new();
        for k in 0..config.n_procs {
            let proc = ProcId::new(config.id, k as u16);
            let host = NodeHost::new(config.protocol.instantiate(
                config.id,
                k as u16,
                config.n_procs,
                config.n_vars,
            ));
            let driver = Driver::Random(WorkloadDriver::new(
                proc,
                workload.clone().with_vars(config.n_vars as u32),
                derive_rng(seed, 0x1000 + k as u64),
            ));
            let id = b.add_actor(
                Box::new(McsActor::new(host, Some(driver), addr.clone())),
                tag,
            );
            actors.push(id);
        }
        for i in 0..actors.len() {
            for j in 0..actors.len() {
                if i != j {
                    b.connect(actors[i], actors[j], config.intra.clone());
                }
            }
        }
        SingleSystem {
            sim: b.build(),
            actors,
            config,
        }
    }

    /// Runs the workload to quiescence.
    pub fn run(&mut self) -> RunOutcome {
        self.sim.run(RunLimit::unlimited())
    }

    /// Extracts the observed computation, merged across processes in
    /// completion-time order (program order preserved per process).
    pub fn history(&mut self) -> History {
        let streams = self
            .actors
            .clone()
            .into_iter()
            .map(|id| {
                self.sim
                    .actor_mut::<McsActor>(id)
                    .expect("actor type is McsActor")
                    .host_mut()
                    .take_ops()
            })
            .collect();
        History::merge_streams(streams)
    }

    /// The underlying simulator (stats, trace).
    pub fn sim(&self) -> &Sim<McsMsg> {
        &self.sim
    }

    /// Mutable simulator access.
    pub fn sim_mut(&mut self) -> &mut Sim<McsMsg> {
        &mut self.sim
    }

    /// The system's configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Replica-update log of process `slot` (trace-level checks).
    pub fn updates_of(&self, slot: usize) -> Vec<crate::node::ReplicaUpdate> {
        let actor = self
            .sim
            .actor::<McsActor>(self.actors[slot])
            .expect("actor type is McsActor");
        actor.host().updates().to_vec()
    }

    /// Write-call response times of process `slot`, in issue order.
    pub fn responses_of(&self, slot: usize) -> Vec<Duration> {
        let actor = self
            .sim
            .actor::<McsActor>(self.actors[slot])
            .expect("actor type is McsActor");
        actor.host().write_responses().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_system(kind: ProtocolKind, n: usize, seed: u64) -> History {
        let config = SystemConfig::new(SystemId(0), kind, n).with_vars(3);
        let mut sys = SingleSystem::build(config, &WorkloadSpec::small(), seed);
        assert!(sys.run().is_quiescent());
        sys.history()
    }

    #[test]
    fn ahamad_system_runs_and_records_all_ops() {
        let h = run_system(ProtocolKind::Ahamad, 3, 1);
        // 3 procs × 8 ops.
        assert_eq!(h.len(), 24);
        assert!(h.validate_differentiated().is_ok());
    }

    #[test]
    fn frontier_system_runs_to_quiescence() {
        let h = run_system(ProtocolKind::Frontier, 4, 2);
        assert_eq!(h.len(), 32);
        assert!(h.validate_differentiated().is_ok());
    }

    #[test]
    fn sequencer_system_completes_blocking_writes() {
        let h = run_system(ProtocolKind::Sequencer, 3, 3);
        assert_eq!(h.len(), 24, "every blocked write eventually completes");
        assert!(h.validate_differentiated().is_ok());
    }

    #[test]
    fn histories_are_reproducible_per_seed() {
        let a = run_system(ProtocolKind::Ahamad, 3, 9);
        let b = run_system(ProtocolKind::Ahamad, 3, 9);
        assert_eq!(a, b);
        let c = run_system(ProtocolKind::Ahamad, 3, 10);
        assert_ne!(a, c, "different seeds explore different schedules");
    }

    #[test]
    fn ahamad_message_count_matches_section6_model() {
        // Section 6 assumes x−1 messages per write in a system with x
        // MCS-processes and none per read.
        for n in [2usize, 4, 6] {
            let config = SystemConfig::new(SystemId(0), ProtocolKind::Ahamad, n).with_vars(2);
            let spec = WorkloadSpec::write_only(5, 2);
            let mut sys = SingleSystem::build(config, &spec, 7);
            sys.run();
            let writes = (n * 5) as u64;
            assert_eq!(
                sys.sim().stats().total_messages(),
                writes * (n as u64 - 1),
                "n = {n}"
            );
        }
    }

    #[test]
    fn reads_generate_no_messages_in_propagation_protocols() {
        let config = SystemConfig::new(SystemId(0), ProtocolKind::Ahamad, 3);
        let spec = WorkloadSpec::small().with_write_fraction(0.0);
        let mut sys = SingleSystem::build(config, &spec, 4);
        sys.run();
        assert_eq!(sys.sim().stats().total_messages(), 0);
    }

    #[test]
    fn update_logs_cover_every_write_everywhere() {
        let config = SystemConfig::new(SystemId(0), ProtocolKind::Ahamad, 3).with_vars(2);
        let spec = WorkloadSpec::write_only(4, 2);
        let mut sys = SingleSystem::build(config, &spec, 5);
        sys.run();
        for slot in 0..3 {
            assert_eq!(
                sys.updates_of(slot).len(),
                12,
                "each process applies all 12 writes"
            );
        }
    }

    #[test]
    fn eager_system_also_runs_but_is_not_causal_memory() {
        // It runs fine mechanically; its histories are checked (and
        // rejected) in the checker's tests.
        let h = run_system(ProtocolKind::EagerFifo, 3, 6);
        assert_eq!(h.len(), 24);
    }
}
