//! Per-variable sequencer protocol — **cache** consistency.
//!
//! The parametrized protocol of the paper's reference \[6\] can be
//! instantiated for sequential, causal or cache consistency; this module
//! is the cache instantiation: each variable has an *owner* process
//! (`var mod n_procs`) that totally orders the writes **to that
//! variable**; every process applies each variable's writes in its
//! owner's order; reads are local; writes block until the writer applies
//! its own ordered write.
//!
//! The result is sequentially consistent *per variable* (Goodman's cache
//! consistency) but makes **no promise across variables** — it is
//! neither causal nor PRAM. It exists for the extension experiments that
//! map which consistency models survive IS-protocol interconnection
//! (X11/X12); Theorem 1's causality hypothesis is not satisfied by this
//! protocol, and the experiments show what breaks.

use std::collections::BTreeMap;
use std::fmt;

use cmi_types::{ProcId, Value, VarId};

use crate::msg::McsMsg;
use crate::protocol::{McsProtocol, Outbox, PendingUpdate, Replicas, UpdateMeta, WriteOutcome};

/// One MCS-process of the per-variable sequencer protocol.
pub struct VarSeq {
    me: ProcId,
    n_procs: usize,
    n_vars: usize,
    replicas: Replicas,
    /// Next order number per owned variable.
    next_order: BTreeMap<VarId, u64>,
    /// Highest applied order per variable.
    applied: BTreeMap<VarId, u64>,
    /// Ordered writes waiting for their per-variable predecessors.
    buffer: BTreeMap<(VarId, u64), (Value, ProcId)>,
}

impl VarSeq {
    /// Creates the MCS-process `me` of a system with `n_procs`
    /// MCS-processes and `n_vars` shared variables.
    pub fn new(me: ProcId, n_procs: usize, n_vars: usize) -> Self {
        assert!(me.slot() < n_procs, "process slot out of range");
        VarSeq {
            me,
            n_procs,
            n_vars,
            replicas: Replicas::new(n_vars),
            next_order: BTreeMap::new(),
            applied: BTreeMap::new(),
            buffer: BTreeMap::new(),
        }
    }

    /// The owner of `var` in this system.
    pub fn owner_of(&self, var: VarId) -> ProcId {
        assert!(var.index() < self.n_vars, "variable out of range");
        ProcId::new(self.me.system, (var.index() % self.n_procs) as u16)
    }

    fn order(&mut self, var: VarId, val: Value, writer: ProcId, out: &mut Outbox) {
        debug_assert_eq!(self.owner_of(var), self.me);
        let seq = self.next_order.entry(var).or_insert(0);
        *seq += 1;
        let seq = *seq;
        for k in 0..self.n_procs {
            let peer = ProcId::new(self.me.system, k as u16);
            if peer != self.me {
                out.send(
                    peer,
                    McsMsg::VarSeqOrdered {
                        var,
                        val,
                        writer,
                        seq,
                    },
                );
            }
        }
        self.buffer.insert((var, seq), (val, writer));
    }
}

impl fmt::Debug for VarSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VarSeq")
            .field("me", &self.me)
            .field("buffered", &self.buffer.len())
            .finish()
    }
}

impl McsProtocol for VarSeq {
    fn buffered(&self) -> usize {
        self.buffer.len()
    }

    fn proc(&self) -> ProcId {
        self.me
    }

    fn read(&self, var: VarId) -> Option<Value> {
        self.replicas.read(var)
    }

    fn write(&mut self, var: VarId, val: Value, out: &mut Outbox) -> WriteOutcome {
        let owner = self.owner_of(var);
        if owner == self.me {
            self.order(var, val, self.me, out);
        } else {
            out.send(owner, McsMsg::VarSeqRequest { var, val });
        }
        WriteOutcome::Pending
    }

    fn on_message(&mut self, from: ProcId, msg: McsMsg, out: &mut Outbox) {
        match msg {
            McsMsg::VarSeqRequest { var, val } => {
                assert_eq!(self.owner_of(var), self.me, "request sent to non-owner");
                self.order(var, val, from, out);
            }
            McsMsg::VarSeqOrdered {
                var,
                val,
                writer,
                seq,
            } => {
                self.buffer.insert((var, seq), (val, writer));
            }
            other => panic!("VarSeq received foreign message {other:?}"),
        }
    }

    fn next_applicable(&mut self) -> Option<PendingUpdate> {
        // Any variable whose next ordered write has arrived; scan in
        // variable order for determinism.
        let key = self
            .buffer
            .keys()
            .find(|(var, seq)| self.applied.get(var).copied().unwrap_or(0) + 1 == *seq)
            .copied()?;
        let (val, writer) = self.buffer.remove(&key).expect("key just found");
        Some(PendingUpdate {
            var: key.0,
            val,
            writer,
            meta: UpdateMeta::Seq { seq: key.1 },
        })
    }

    fn apply(&mut self, update: &PendingUpdate, out: &mut Outbox) {
        let UpdateMeta::Seq { seq } = update.meta else {
            panic!("VarSeq asked to apply foreign update {update:?}");
        };
        let prev = self.applied.get(&update.var).copied().unwrap_or(0);
        debug_assert_eq!(prev + 1, seq, "applied out of per-variable order");
        self.applied.insert(update.var, seq);
        self.replicas.store(update.var, update.val);
        if update.writer == self.me {
            out.complete_write(update.var, update.val);
        }
    }

    fn satisfies_causal_updating(&self) -> bool {
        false
    }

    fn is_causal(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmi_types::SystemId;

    fn proc(i: u16) -> ProcId {
        ProcId::new(SystemId(0), i)
    }

    type Drained = (Vec<(VarId, Value)>, Vec<(VarId, Value)>);

    fn drain(p: &mut VarSeq) -> Drained {
        let mut applied = Vec::new();
        let mut completed = Vec::new();
        while let Some(u) = p.next_applicable() {
            let mut out = Outbox::new();
            p.apply(&u, &mut out);
            applied.push((u.var, u.val));
            if let Some(c) = out.completed_write {
                completed.push(c);
            }
        }
        (applied, completed)
    }

    #[test]
    fn ownership_is_round_robin() {
        let p0 = VarSeq::new(proc(0), 3, 6);
        assert_eq!(p0.owner_of(VarId(0)), proc(0));
        assert_eq!(p0.owner_of(VarId(1)), proc(1));
        assert_eq!(p0.owner_of(VarId(2)), proc(2));
        assert_eq!(p0.owner_of(VarId(3)), proc(0));
    }

    #[test]
    fn owner_write_orders_and_completes_locally() {
        let mut p0 = VarSeq::new(proc(0), 2, 2);
        let mut out = Outbox::new();
        let v = Value::new(proc(0), 1);
        assert_eq!(p0.write(VarId(0), v, &mut out), WriteOutcome::Pending);
        assert_eq!(out.sends.len(), 1);
        let (applied, completed) = drain(&mut p0);
        assert_eq!(applied, vec![(VarId(0), v)]);
        assert_eq!(completed, vec![(VarId(0), v)]);
        assert_eq!(p0.read(VarId(0)), Some(v));
    }

    #[test]
    fn non_owner_write_round_trips_through_owner() {
        let mut p0 = VarSeq::new(proc(0), 2, 2);
        let mut p1 = VarSeq::new(proc(1), 2, 2);
        let v = Value::new(proc(1), 1);
        let mut out = Outbox::new();
        // Var 0 is owned by p0; p1 must request.
        p1.write(VarId(0), v, &mut out);
        let (to, req) = out.sends.remove(0);
        assert_eq!(to, proc(0));
        let mut out0 = Outbox::new();
        p0.on_message(proc(1), req, &mut out0);
        drain(&mut p0);
        assert_eq!(p0.read(VarId(0)), Some(v));
        let (_, ordered) = out0.sends.remove(0);
        p1.on_message(proc(0), ordered, &mut Outbox::new());
        let (_, completed) = drain(&mut p1);
        assert_eq!(completed, vec![(VarId(0), v)]);
    }

    #[test]
    fn per_variable_order_is_enforced_independently() {
        let mut p1 = VarSeq::new(proc(1), 2, 2);
        let a2 = Value::new(proc(0), 2);
        let b1 = Value::new(proc(0), 3);
        // Var 0 seq 2 arrives before seq 1: must wait. Var 1 seq 1 is
        // independent and applies immediately.
        p1.on_message(
            proc(0),
            McsMsg::VarSeqOrdered {
                var: VarId(0),
                val: a2,
                writer: proc(0),
                seq: 2,
            },
            &mut Outbox::new(),
        );
        p1.on_message(
            proc(0),
            McsMsg::VarSeqOrdered {
                var: VarId(1),
                val: b1,
                writer: proc(0),
                seq: 1,
            },
            &mut Outbox::new(),
        );
        let (applied, _) = drain(&mut p1);
        assert_eq!(
            applied,
            vec![(VarId(1), b1)],
            "var0 seq2 must wait for seq1"
        );
        let a1 = Value::new(proc(0), 1);
        p1.on_message(
            proc(0),
            McsMsg::VarSeqOrdered {
                var: VarId(0),
                val: a1,
                writer: proc(0),
                seq: 1,
            },
            &mut Outbox::new(),
        );
        let (applied, _) = drain(&mut p1);
        assert_eq!(applied, vec![(VarId(0), a1), (VarId(0), a2)]);
    }

    #[test]
    fn honestly_reports_no_causal_guarantees() {
        let p = VarSeq::new(proc(0), 2, 1);
        assert!(!p.satisfies_causal_updating());
        assert!(!p.is_causal());
    }
}
