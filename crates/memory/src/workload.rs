//! Randomized application workloads.
//!
//! Each application process runs a [`WorkloadDriver`]: a deterministic,
//! per-process stream of read/write operations with think-time gaps.
//! Written values are minted as `(process, sequence)` pairs, so every
//! workload automatically satisfies the paper's differentiated-history
//! assumption (each value written at most once per variable — in fact at
//! most once globally).

use std::time::Duration;

use cmi_sim::SplitMix64;
use cmi_types::{ProcId, Value, VarId};

/// How a workload picks the variable of each operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VarPattern {
    /// Uniform over all variables.
    #[default]
    Uniform,
    /// Hot-spot: variable 0 with the given percentage, the rest uniform
    /// — models the contended-variable workloads the paper's
    /// consistency-islands motivation implies.
    HotSpot {
        /// Probability (percent, `1..=100`) of touching variable 0.
        hot_percent: u8,
    },
    /// Zipf-like: probability of variable `i` proportional to
    /// `1/(i+1)` — a skewed but not degenerate access pattern.
    Zipf,
}

/// Parameters of a randomized workload, shared by all processes of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Operations each application process issues.
    pub ops_per_proc: u32,
    /// Fraction of operations that are writes (`0.0 ..= 1.0`).
    pub write_fraction: f64,
    /// Number of shared variables.
    pub n_vars: u32,
    /// Mean think time between an operation's completion and the next
    /// issue; actual gaps are uniform in `[mean/2, 3*mean/2)`.
    pub mean_gap: Duration,
    /// Variable-selection pattern.
    pub pattern: VarPattern,
}

impl WorkloadSpec {
    /// A small smoke-test workload (checker-friendly sizes).
    pub fn small() -> Self {
        WorkloadSpec {
            ops_per_proc: 8,
            write_fraction: 0.5,
            n_vars: 3,
            mean_gap: Duration::from_millis(5),
            pattern: VarPattern::Uniform,
        }
    }

    /// A medium workload for correctness sweeps.
    pub fn medium() -> Self {
        WorkloadSpec {
            ops_per_proc: 60,
            write_fraction: 0.4,
            n_vars: 8,
            mean_gap: Duration::from_millis(3),
            pattern: VarPattern::Uniform,
        }
    }

    /// A write-only workload, used by the Section 6 message-counting
    /// experiments (reads generate no messages in these protocols, so
    /// messages-per-write is cleanest with writes only).
    pub fn write_only(ops_per_proc: u32, n_vars: u32) -> Self {
        WorkloadSpec {
            ops_per_proc,
            write_fraction: 1.0,
            n_vars,
            mean_gap: Duration::from_millis(2),
            pattern: VarPattern::Uniform,
        }
    }

    /// Sets the number of operations per process.
    pub fn with_ops(mut self, ops: u32) -> Self {
        self.ops_per_proc = ops;
        self
    }

    /// Sets the write fraction.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not within `0.0..=1.0`.
    pub fn with_write_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "write fraction must be in [0,1]");
        self.write_fraction = f;
        self
    }

    /// Sets the mean think time.
    pub fn with_mean_gap(mut self, gap: Duration) -> Self {
        self.mean_gap = gap;
        self
    }

    /// Sets the variable count.
    pub fn with_vars(mut self, n: u32) -> Self {
        assert!(n > 0, "at least one variable");
        self.n_vars = n;
        self
    }

    /// Sets the variable-selection pattern.
    pub fn with_pattern(mut self, pattern: VarPattern) -> Self {
        if let VarPattern::HotSpot { hot_percent } = pattern {
            assert!(
                (1..=100).contains(&hot_percent),
                "hot percentage must be in 1..=100"
            );
        }
        self.pattern = pattern;
        self
    }
}

/// One operation the driver wants to issue next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpPlan {
    /// Read the variable.
    Read(VarId),
    /// Write the (freshly minted, globally unique) value.
    Write(VarId, Value),
}

/// Deterministic per-process operation stream.
#[derive(Debug)]
pub struct WorkloadDriver {
    proc: ProcId,
    spec: WorkloadSpec,
    issued: u32,
    next_seq: u32,
    rng: SplitMix64,
}

impl WorkloadDriver {
    /// Creates the driver for `proc` with its own derived RNG stream.
    pub fn new(proc: ProcId, spec: WorkloadSpec, rng: SplitMix64) -> Self {
        assert!(spec.n_vars > 0, "workload needs at least one variable");
        WorkloadDriver {
            proc,
            spec,
            issued: 0,
            next_seq: 0,
            rng,
        }
    }

    /// The driving process.
    pub fn proc(&self) -> ProcId {
        self.proc
    }

    /// `true` once every planned operation has been issued.
    pub fn done(&self) -> bool {
        self.issued >= self.spec.ops_per_proc
    }

    /// Plans the next operation, or `None` when the stream is exhausted.
    pub fn next_op(&mut self) -> Option<OpPlan> {
        if self.done() {
            return None;
        }
        self.issued += 1;
        let var = self.pick_var();
        if self.rng.gen_bool(self.spec.write_fraction) {
            self.next_seq += 1;
            Some(OpPlan::Write(var, Value::new(self.proc, self.next_seq)))
        } else {
            Some(OpPlan::Read(var))
        }
    }

    fn pick_var(&mut self) -> VarId {
        let n = self.spec.n_vars;
        match self.spec.pattern {
            VarPattern::Uniform => VarId(self.rng.gen_range(0..n)),
            VarPattern::HotSpot { hot_percent } => {
                if self.rng.gen_range(0..100) < u32::from(hot_percent) || n == 1 {
                    VarId(0)
                } else {
                    VarId(self.rng.gen_range(1..n))
                }
            }
            VarPattern::Zipf => {
                // Weights 1/(i+1); sample by cumulative sum.
                let total: f64 = (0..n).map(|i| 1.0 / (i as f64 + 1.0)).sum();
                let mut x = self.rng.gen_range(0.0..total);
                for i in 0..n {
                    let w = 1.0 / (i as f64 + 1.0);
                    if x < w {
                        return VarId(i);
                    }
                    x -= w;
                }
                VarId(n - 1)
            }
        }
    }

    /// Think time before the next operation.
    pub fn gap(&mut self) -> Duration {
        let mean = self.spec.mean_gap.as_nanos() as u64;
        if mean == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.rng.gen_range(mean / 2..mean + mean / 2))
    }
}

/// A fully scripted operation stream: explicit `(delay, op)` pairs, used
/// by adversarial experiment scenarios (X7, X8) where the schedule must
/// be exact.
#[derive(Debug, Clone)]
pub struct ScriptedDriver {
    steps: std::collections::VecDeque<(Duration, OpPlan)>,
}

impl ScriptedDriver {
    /// Creates a driver that issues each op `delay` after the previous
    /// op's completion (the first relative to the start of the run).
    pub fn new(steps: impl IntoIterator<Item = (Duration, OpPlan)>) -> Self {
        ScriptedDriver {
            steps: steps.into_iter().collect(),
        }
    }

    /// Remaining steps.
    pub fn remaining(&self) -> usize {
        self.steps.len()
    }
}

/// Either a randomized or a scripted operation stream.
#[derive(Debug)]
pub enum Driver {
    /// Randomized workload.
    Random(WorkloadDriver),
    /// Exact scripted schedule.
    Scripted(ScriptedDriver),
}

impl Driver {
    /// The next `(think-time, op)` pair, or `None` when exhausted.
    #[allow(clippy::should_implement_trait)] // not an Iterator: &mut self + side effects by design
    pub fn next(&mut self) -> Option<(Duration, OpPlan)> {
        match self {
            Driver::Random(d) => {
                let gap = d.gap();
                d.next_op().map(|op| (gap, op))
            }
            Driver::Scripted(s) => s.steps.pop_front(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmi_sim::rng::derive_rng;
    use cmi_types::SystemId;

    fn driver(write_fraction: f64, ops: u32, seed: u64) -> WorkloadDriver {
        let proc = ProcId::new(SystemId(0), 1);
        let spec = WorkloadSpec {
            ops_per_proc: ops,
            write_fraction,
            n_vars: 4,
            mean_gap: Duration::from_millis(2),
            pattern: VarPattern::Uniform,
        };
        WorkloadDriver::new(proc, spec, derive_rng(seed, 0))
    }

    #[test]
    fn issues_exactly_the_planned_number_of_ops() {
        let mut d = driver(0.5, 10, 1);
        let mut n = 0;
        while d.next_op().is_some() {
            n += 1;
        }
        assert_eq!(n, 10);
        assert!(d.done());
        assert!(d.next_op().is_none());
    }

    #[test]
    fn write_only_stream_mints_unique_values() {
        let mut d = driver(1.0, 20, 2);
        let mut values = Vec::new();
        while let Some(op) = d.next_op() {
            match op {
                OpPlan::Write(_, v) => values.push(v),
                OpPlan::Read(_) => panic!("write-only workload read"),
            }
        }
        let mut dedup = values.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), values.len(), "values must be unique");
    }

    #[test]
    fn read_only_stream_never_writes() {
        let mut d = driver(0.0, 20, 3);
        while let Some(op) = d.next_op() {
            assert!(matches!(op, OpPlan::Read(_)));
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = driver(0.5, 20, 7);
        let mut b = driver(0.5, 20, 7);
        loop {
            let (oa, ob) = (a.next_op(), b.next_op());
            assert_eq!(oa, ob);
            if oa.is_none() {
                break;
            }
        }
    }

    #[test]
    fn gaps_cluster_around_the_mean() {
        let mut d = driver(0.5, 1, 5);
        for _ in 0..100 {
            let g = d.gap();
            assert!(g >= Duration::from_millis(1), "gap {g:?} below mean/2");
            assert!(g < Duration::from_millis(3), "gap {g:?} above 3*mean/2");
        }
    }

    #[test]
    fn spec_builders_validate() {
        let s = WorkloadSpec::small()
            .with_ops(5)
            .with_write_fraction(0.7)
            .with_vars(2)
            .with_mean_gap(Duration::from_millis(1));
        assert_eq!(s.ops_per_proc, 5);
        assert_eq!(s.n_vars, 2);
    }

    #[test]
    #[should_panic(expected = "write fraction")]
    fn invalid_write_fraction_panics() {
        let _ = WorkloadSpec::small().with_write_fraction(1.5);
    }

    #[test]
    fn hot_spot_pattern_skews_toward_variable_zero() {
        let proc = ProcId::new(SystemId(0), 1);
        let spec = WorkloadSpec::small()
            .with_ops(200)
            .with_write_fraction(0.0)
            .with_pattern(VarPattern::HotSpot { hot_percent: 90 });
        let mut d = WorkloadDriver::new(proc, spec, derive_rng(5, 0));
        let mut hot = 0;
        let mut total = 0;
        while let Some(OpPlan::Read(var)) = d.next_op() {
            total += 1;
            if var == VarId(0) {
                hot += 1;
            }
        }
        assert_eq!(total, 200);
        assert!(hot > 150, "expected ~90% hot hits, got {hot}/200");
    }

    #[test]
    fn zipf_pattern_is_skewed_but_covers_all_vars() {
        let proc = ProcId::new(SystemId(0), 1);
        let spec = WorkloadSpec::small()
            .with_ops(400)
            .with_write_fraction(0.0)
            .with_vars(4)
            .with_pattern(VarPattern::Zipf);
        let mut d = WorkloadDriver::new(proc, spec, derive_rng(6, 0));
        let mut counts = [0u32; 4];
        while let Some(OpPlan::Read(var)) = d.next_op() {
            counts[var.index()] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 0),
            "all vars touched: {counts:?}"
        );
        assert!(counts[0] > counts[3], "skew toward low vars: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "hot percentage")]
    fn invalid_hot_percentage_panics() {
        let _ = WorkloadSpec::small().with_pattern(VarPattern::HotSpot { hot_percent: 0 });
    }

    #[test]
    fn scripted_driver_replays_exactly() {
        let p0 = ProcId::new(SystemId(0), 0);
        let v = Value::new(p0, 1);
        let steps = vec![
            (Duration::from_millis(1), OpPlan::Write(VarId(0), v)),
            (Duration::from_millis(2), OpPlan::Read(VarId(0))),
        ];
        let mut d = Driver::Scripted(ScriptedDriver::new(steps.clone()));
        assert_eq!(d.next(), Some(steps[0]));
        assert_eq!(d.next(), Some(steps[1]));
        assert_eq!(d.next(), None);
    }

    #[test]
    fn random_driver_through_unified_interface() {
        let mut d = Driver::Random(driver(1.0, 3, 11));
        let mut n = 0;
        while let Some((gap, op)) = d.next() {
            assert!(gap > Duration::ZERO);
            assert!(matches!(op, OpPlan::Write(..)));
            n += 1;
        }
        assert_eq!(n, 3);
    }
}
