//! Protocol conformance suite: every `McsProtocol` implementation must
//! uphold the contract the host and the IS-protocols rely on
//! (the invariants documented on the trait). Run against every
//! [`ProtocolKind`], current and future.

use cmi_memory::{McsProtocol, Outbox, ProtocolKind, ReadOutcome, WriteOutcome};
use cmi_types::{ProcId, SystemId, Value, VarId};

const ALL_KINDS: [ProtocolKind; 6] = [
    ProtocolKind::Ahamad,
    ProtocolKind::Frontier,
    ProtocolKind::Sequencer,
    ProtocolKind::Atomic,
    ProtocolKind::EagerFifo,
    ProtocolKind::VarSeq,
];

const N: usize = 3;
const VARS: usize = 3;

fn fleet(kind: ProtocolKind) -> Vec<Box<dyn McsProtocol>> {
    (0..N)
        .map(|k| kind.instantiate(SystemId(0), k as u16, N, VARS))
        .collect()
}

fn proc(i: u16) -> ProcId {
    ProcId::new(SystemId(0), i)
}

/// Routes every outbox message to its destination until the whole fleet
/// quiesces, applying deliverable updates at each step. Returns the
/// completed `(var, val)` write calls per process.
fn settle(
    fleet: &mut [Box<dyn McsProtocol>],
    mut pending: Vec<(ProcId, ProcId, cmi_memory::McsMsg)>,
) -> Vec<Vec<(VarId, Value)>> {
    let mut completed = vec![Vec::new(); fleet.len()];
    while !pending.is_empty() {
        let mut next = Vec::new();
        for (from, to, msg) in pending.drain(..) {
            let mut out = Outbox::new();
            fleet[to.slot()].on_message(from, msg, &mut out);
            for (dest, m) in out.sends {
                next.push((to, dest, m));
            }
            assert!(out.completed_write.is_none(), "completion outside apply");
            // Drain applicable updates.
            while let Some(u) = fleet[to.slot()].next_applicable() {
                let mut out = Outbox::new();
                fleet[to.slot()].apply(&u, &mut out);
                if let Some(c) = out.completed_write {
                    completed[to.slot()].push(c);
                }
                for (dest, m) in out.sends {
                    next.push((to, dest, m));
                }
            }
        }
        pending = next;
    }
    completed
}

#[test]
fn replicas_start_at_bottom_everywhere() {
    for kind in ALL_KINDS {
        for p in fleet(kind) {
            for v in 0..VARS {
                assert_eq!(p.read(VarId(v as u32)), None, "{kind}");
            }
        }
    }
}

#[test]
fn every_write_eventually_reaches_every_replica() {
    for kind in ALL_KINDS {
        let mut fleet = fleet(kind);
        let v = Value::new(proc(1), 1);
        let mut out = Outbox::new();
        let outcome = fleet[1].write(VarId(0), v, &mut out);
        // Fast-write protocols apply locally at once.
        if outcome == WriteOutcome::Done {
            assert_eq!(fleet[1].read(VarId(0)), Some(v), "{kind}");
        }
        let pending: Vec<_> = out
            .sends
            .into_iter()
            .map(|(to, m)| (proc(1), to, m))
            .collect();
        let completed = settle(&mut fleet, pending);
        for (k, p) in fleet.iter().enumerate() {
            assert_eq!(
                p.read(VarId(0)),
                Some(v),
                "{kind}: replica {k} missed the write"
            );
        }
        if outcome == WriteOutcome::Pending {
            assert_eq!(
                completed[1],
                vec![(VarId(0), v)],
                "{kind}: blocked write completes"
            );
        }
    }
}

#[test]
fn local_peek_read_is_always_immediate() {
    // The IS-process upcall reads use `read()`, which must never block —
    // condition (b) of the paper.
    for kind in ALL_KINDS {
        let fleet = fleet(kind);
        // `read` has no outbox: by signature it cannot send or block.
        let _ = fleet[2].read(VarId(1));
    }
}

#[test]
fn read_call_blocks_only_for_atomic_memory() {
    for kind in ALL_KINDS {
        let mut fleet = fleet(kind);
        let mut out = Outbox::new();
        let outcome = fleet[1].read_call(VarId(0), &mut out);
        match kind {
            ProtocolKind::Atomic => {
                assert_eq!(outcome, ReadOutcome::Pending, "{kind}");
                assert_eq!(out.sends.len(), 1, "{kind}: one request to the sequencer");
            }
            _ => {
                assert_eq!(outcome, ReadOutcome::Done(None), "{kind}");
                assert!(out.is_empty(), "{kind}: local reads are silent");
            }
        }
    }
}

#[test]
fn causal_updating_flag_matches_causality_flag() {
    for kind in ALL_KINDS {
        let p = kind.instantiate(SystemId(0), 0, N, VARS);
        assert_eq!(p.is_causal(), kind.is_causal(), "{kind}");
        assert_eq!(
            p.satisfies_causal_updating(),
            kind.satisfies_causal_updating(),
            "{kind}"
        );
        // In this protocol zoo the two properties coincide.
        assert_eq!(p.is_causal(), p.satisfies_causal_updating(), "{kind}");
    }
}

#[test]
fn two_writes_from_one_process_arrive_in_order_everywhere() {
    for kind in ALL_KINDS {
        if kind == ProtocolKind::VarSeq {
            // Blocking per-variable writes: a second write cannot be
            // issued before the first completes; exercised in the
            // simulator tests instead.
            continue;
        }
        let mut fleet = fleet(kind);
        let v1 = Value::new(proc(0), 1);
        let v2 = Value::new(proc(0), 2);
        let mut pending = Vec::new();
        for v in [v1, v2] {
            let mut out = Outbox::new();
            fleet[0].write(VarId(0), v, &mut out);
            // Drain own applicable updates (sequencer-style protocols).
            while let Some(u) = fleet[0].next_applicable() {
                let mut out2 = Outbox::new();
                fleet[0].apply(&u, &mut out2);
                pending.extend(out2.sends.into_iter().map(|(to, m)| (proc(0), to, m)));
            }
            pending.extend(out.sends.into_iter().map(|(to, m)| (proc(0), to, m)));
        }
        settle(&mut fleet, pending);
        for (k, p) in fleet.iter().enumerate() {
            assert_eq!(
                p.read(VarId(0)),
                Some(v2),
                "{kind}: replica {k} must end on the later write"
            );
        }
    }
}

#[test]
#[should_panic(expected = "foreign message")]
fn foreign_messages_are_rejected() {
    let mut p = ProtocolKind::Ahamad.instantiate(SystemId(0), 0, N, VARS);
    p.on_message(
        proc(1),
        cmi_memory::McsMsg::SeqRequest {
            var: VarId(0),
            val: Value::new(proc(1), 1),
        },
        &mut Outbox::new(),
    );
}
