//! Randomized tests for the MCS protocols: every causal protocol produces
//! causal (and differentiated) computations under randomized workloads
//! and randomized network conditions; the sequencer additionally
//! produces sequentially consistent ones.
//!
//! Cases are drawn from seeded in-tree [`SplitMix64`] streams, so any
//! failure reproduces from the case number in its message.

use std::time::Duration;

use cmi_checker::trace::check_order_respects_causality;
use cmi_checker::{causal, sequential, AppliedWrite};
use cmi_memory::{ProtocolKind, SingleSystem, SystemConfig, WorkloadSpec};
use cmi_sim::{ChannelSpec, SplitMix64};
use cmi_types::SystemId;

fn protocol(rng: &mut SplitMix64) -> ProtocolKind {
    match rng.gen_range(0u32..3) {
        0 => ProtocolKind::Ahamad,
        1 => ProtocolKind::Frontier,
        _ => ProtocolKind::Sequencer,
    }
}

fn run(
    kind: ProtocolKind,
    n: usize,
    ops: u32,
    jitter_ms: u64,
    seed: u64,
) -> (SingleSystem, cmi_types::History) {
    let intra = if jitter_ms == 0 {
        ChannelSpec::fixed(Duration::from_millis(1))
    } else {
        ChannelSpec::jittered(Duration::from_millis(1), Duration::from_millis(jitter_ms))
    };
    let config = SystemConfig::new(SystemId(0), kind, n)
        .with_vars(3)
        .with_intra(intra);
    let spec = WorkloadSpec::small().with_ops(ops).with_write_fraction(0.5);
    let mut sys = SingleSystem::build(config, &spec, seed);
    assert!(sys.run().is_quiescent());
    let h = sys.history();
    (sys, h)
}

#[test]
fn causal_protocols_produce_causal_histories() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::seed_from_u64(0xCA05 ^ case);
        let kind = protocol(&mut rng);
        let n = rng.gen_range(2usize..5);
        let ops = rng.gen_range(4u32..12);
        let jitter_ms = rng.gen_range(0u64..8);
        let seed = rng.gen_range(0u64..10_000);
        let (_, h) = run(kind, n, ops, jitter_ms, seed);
        assert_eq!(
            h.len() as u32,
            n as u32 * ops,
            "all ops complete (case {case})"
        );
        assert!(h.validate_differentiated().is_ok(), "case {case}");
        let report = causal::check(&h);
        assert!(
            report.is_causal(),
            "{} not causal (case {case}): {:?}",
            kind,
            report.verdict
        );
    }
}

#[test]
fn sequencer_histories_are_sequentially_consistent() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::seed_from_u64(0x5E0C ^ case);
        let n = rng.gen_range(2usize..4);
        let ops = rng.gen_range(3u32..8);
        let jitter_ms = rng.gen_range(0u64..8);
        let seed = rng.gen_range(0u64..10_000);
        let (_, h) = run(ProtocolKind::Sequencer, n, ops, jitter_ms, seed);
        let verdict = sequential::check(&h);
        assert!(
            verdict.is_sequential(),
            "sequencer run not SC (case {case})"
        );
    }
}

#[test]
fn causal_updating_holds_at_every_replica() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::seed_from_u64(0x0BDA ^ case);
        let kind = protocol(&mut rng);
        let n = rng.gen_range(2usize..5);
        let ops = rng.gen_range(4u32..10);
        let jitter_ms = rng.gen_range(0u64..8);
        let seed = rng.gen_range(0u64..10_000);
        let (sys, h) = run(kind, n, ops, jitter_ms, seed);
        for slot in 0..n {
            let updates: Vec<AppliedWrite> = sys
                .updates_of(slot)
                .iter()
                .map(|u| AppliedWrite {
                    var: u.var,
                    val: u.val,
                })
                .collect();
            assert!(
                check_order_respects_causality(&h, &updates).is_ok(),
                "Property 1 violated at slot {slot} of {kind} (case {case})"
            );
        }
    }
}

#[test]
fn runs_are_reproducible() {
    for case in 0..24u64 {
        let mut rng = SplitMix64::seed_from_u64(0x4E94 ^ case);
        let kind = protocol(&mut rng);
        let seed = rng.gen_range(0u64..10_000);
        let (_, a) = run(kind, 3, 6, 4, seed);
        let (_, b) = run(kind, 3, 6, 4, seed);
        assert_eq!(a, b, "case {case}");
    }
}

/// The faulty protocol exists to be caught: under an adversarial delay
/// assignment the eager protocol produces a provably non-causal history.
#[test]
fn eager_fifo_violates_causality_under_asymmetric_delays() {
    // Deterministic construction: p0's updates reach p1 fast and p2
    // slowly; p1 reacts to p0's write, p2 sees the reaction before the
    // cause.
    use cmi_memory::{system::McsActor, NodeHost};
    use cmi_memory::{Driver, OpPlan, ScriptedDriver};
    use cmi_sim::{NetworkTag, RunLimit, SimBuilder};
    use cmi_types::{ProcId, Value, VarId};
    use std::collections::HashMap;

    let sys = SystemId(0);
    let procs: Vec<ProcId> = (0..3).map(|k| ProcId::new(sys, k)).collect();
    let mut b = SimBuilder::new(1);
    let addr: HashMap<ProcId, cmi_sim::ActorId> = procs
        .iter()
        .enumerate()
        .map(|(i, p)| (*p, cmi_sim::ActorId(i as u32)))
        .collect();
    let ms = Duration::from_millis;
    let scripts: Vec<Vec<(Duration, OpPlan)>> = vec![
        // p0 writes x at 5ms.
        vec![(ms(5), OpPlan::Write(VarId(0), Value::new(procs[0], 1)))],
        // p1 polls x, then writes y (its write is causally after x once
        // it has read it).
        vec![
            (ms(7), OpPlan::Read(VarId(0))),
            (ms(1), OpPlan::Write(VarId(1), Value::new(procs[1], 1))),
        ],
        // p2 polls y then x: sees y=… while x is still ⊥.
        vec![
            (ms(12), OpPlan::Read(VarId(1))),
            (ms(1), OpPlan::Read(VarId(0))),
        ],
    ];
    for (k, script) in scripts.into_iter().enumerate() {
        let host = NodeHost::new(ProtocolKind::EagerFifo.instantiate(sys, k as u16, 3, 2));
        let driver = Driver::Scripted(ScriptedDriver::new(script));
        let actor = McsActor::new(host, Some(driver), addr.clone());
        b.add_actor(Box::new(actor), NetworkTag(0));
    }
    // Channels: p0→p1 fast (1ms), p0→p2 slow (50ms), p1→p2 fast (2ms).
    let fast = ChannelSpec::fixed(ms(1));
    let slow = ChannelSpec::fixed(ms(50));
    let a = |i: usize| cmi_sim::ActorId(i as u32);
    b.connect(a(0), a(1), fast.clone());
    b.connect(a(1), a(0), fast.clone());
    b.connect(a(0), a(2), slow);
    b.connect(a(2), a(0), fast.clone());
    b.connect(a(1), a(2), ChannelSpec::fixed(ms(2)));
    b.connect(a(2), a(1), fast.clone());
    let mut sim = b.build();
    assert!(sim.run(RunLimit::unlimited()).is_quiescent());

    let mut merged: Vec<(cmi_types::SimTime, usize, usize, cmi_types::OpRecord)> = Vec::new();
    for i in 0..3 {
        let actor = sim.actor_mut::<McsActor>(a(i)).unwrap();
        for (j, op) in actor.host_mut().take_ops().into_iter().enumerate() {
            merged.push((op.at, i, j, op));
        }
    }
    merged.sort_by_key(|(at, i, j, _)| (*at, *i, *j));
    let h: cmi_types::History = merged.into_iter().map(|(_, _, _, op)| op).collect();

    let report = causal::check(&h);
    assert!(
        !report.is_causal(),
        "the eager protocol must violate causality here:\n{h}"
    );
}
