//! JSON value model, serializer and parser.
//!
//! The writer escapes per RFC 8259 (`"`/`\`, the short escapes, and
//! `\u00XX` for the remaining control characters) and renders non-finite
//! floats as `null` (JSON has no NaN/Infinity). The parser is a plain
//! recursive-descent parser over the full grammar, including `\uXXXX`
//! escapes with surrogate pairs, with a nesting-depth limit so hostile
//! inputs cannot blow the stack.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum array/object nesting accepted by the parser.
const MAX_DEPTH: usize = 128;

/// A JSON value.
///
/// Objects keep insertion order (a `Vec` of pairs, not a map) so emitted
/// artifacts are deterministic and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers up to 2^53 render without a fraction.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Conversion into the [`Json`] value model.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array by converting each item.
    pub fn arr<T: ToJson, I: IntoIterator<Item = T>>(items: I) -> Json {
        Json::Arr(items.into_iter().map(|x| x.to_json()).collect())
    }

    /// Member lookup on an object (first match); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Index into an array; `None` out of range or on non-arrays.
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(index),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if exactly integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serializes without whitespace.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out
    }

    /// Parses a JSON document (must consume the entire input).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

// ---------------------------------------------------------------- writer

fn write_value(out: &mut String, v: &Json, indent: Option<usize>, level: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => write_number(out, *n),
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline(out, indent, level);
            out.push(']');
        }
        Json::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline(out, indent, level);
            out.push('}');
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

/// Non-finite values have no JSON representation and become `null`;
/// integral values within the f64-exact range print without a fraction.
fn write_number(out: &mut String, n: f64) {
    use fmt::Write;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{:?}` is Rust's shortest round-trip float formatting.
        let _ = write!(out, "{n:?}");
    }
}

fn write_string(out: &mut String, s: &str) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the longest run without escapes or terminators in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 and the run breaks only at
                // ASCII bytes, so the slice falls on char boundaries.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b't' => out.push('\t'),
            b'r' => out.push('\r'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                        self.pos += 2;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.err("unpaired high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("unpaired low surrogate"));
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?);
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digit"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected digit after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected digit in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

/// Conversion from the [`Json`] value model, the inverse of [`ToJson`].
///
/// Errors are plain strings naming what was expected — decoders layer
/// their own context on top.
pub trait FromJson: Sized {
    /// Decodes `v` into `Self`.
    fn from_json(v: &Json) -> Result<Self, String>;
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, String> {
        v.as_bool().ok_or_else(|| format!("expected bool, got {v}"))
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, String> {
        v.as_f64()
            .ok_or_else(|| format!("expected number, got {v}"))
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, String> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("expected string, got {v}"))
    }
}

macro_rules! int_from_json {
    ($($t:ty),*) => {$(
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, String> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| format!("expected integer, got {v}"))?;
                <$t>::try_from(n).map_err(|_| format!("integer {n} out of range"))
            }
        }
    )*};
}
int_from_json!(u8, u16, u32, u64, usize);

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, String> {
        v.as_array()
            .ok_or_else(|| format!("expected array, got {v}"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

// --------------------------------------------------------- ToJson impls

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

macro_rules! int_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )*};
}
int_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<K: ToString, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Json) {
        let compact = Json::parse(&v.to_compact()).expect("compact parses");
        assert_eq!(&compact, v);
        let pretty = Json::parse(&v.to_pretty()).expect("pretty parses");
        assert_eq!(&pretty, v);
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-17.0),
            Json::Num(3.5),
            Json::Num(1e-9),
            Json::Num(1.0e18),
            Json::Str(String::new()),
            Json::Str("plain".into()),
        ] {
            round_trip(&v);
        }
    }

    #[test]
    fn escaping_round_trips_control_chars_quotes_and_unicode() {
        let nasty = "quote\" backslash\\ newline\n tab\t cr\r bell\u{7} nul\0 \
                     bs\u{8} ff\u{c} slash/ ünïcødé 💾 \u{2028}";
        let v = Json::Str(nasty.to_string());
        round_trip(&v);
        // Control characters never appear raw in the output.
        assert!(v.to_compact().chars().all(|c| c >= ' '));
    }

    #[test]
    fn unicode_escapes_and_surrogate_pairs_parse() {
        let parsed = Json::parse(r#""\u0041\u00e9\ud83d\ude00\u2028""#).unwrap();
        assert_eq!(parsed, Json::Str("A\u{e9}\u{1f600}\u{2028}".into()));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
        assert_eq!(Json::Num(f64::NEG_INFINITY).to_compact(), "null");
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).to_compact(), "42");
        assert_eq!(Json::Num(-3.0).to_compact(), "-3");
        assert_eq!(Json::Num(0.5).to_compact(), "0.5");
        assert_eq!(
            9_007_199_254_740_991u64.to_json().to_compact(),
            "9007199254740991"
        );
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj([
            ("name", Json::Str("run".into())),
            ("ok", Json::Bool(true)),
            (
                "items",
                Json::Arr(vec![Json::Num(1.0), Json::Null, Json::Str("x".into())]),
            ),
            (
                "nested",
                Json::obj([
                    ("empty_arr", Json::Arr(vec![])),
                    ("empty_obj", Json::obj::<&str, _>([])),
                ]),
            ),
        ]);
        round_trip(&v);
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::obj([("z", Json::Num(1.0)), ("a", Json::Num(2.0))]);
        assert_eq!(v.to_compact(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn accessors_navigate_documents() {
        let v = Json::parse(r#"{"a": [1, {"b": "c"}], "n": null, "t": true}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.at(0)).and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            v.get("a")
                .and_then(|a| a.at(1))
                .and_then(|o| o.get("b"))
                .and_then(Json::as_str),
            Some("c")
        );
        assert!(v.get("n").unwrap().is_null());
        assert_eq!(v.get("t").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            r#""unterminated"#,
            "01x",
            "{\"a\" 1}",
            "[1] garbage",
            r#""\ud800""#,
            r#""\q""#,
            "1.e5",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parser_enforces_depth_limit() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Json::obj([("a", Json::Arr(vec![Json::Num(1.0)]))]);
        assert_eq!(v.to_pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    }
}
