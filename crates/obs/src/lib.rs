//! # cmi-obs — zero-dependency observability layer
//!
//! The measurement substrate of the workspace: every structured artifact a
//! run produces — metrics, traces, reports, bench results — flows through
//! this crate. It deliberately depends on nothing (not even other `cmi-*`
//! crates) so the whole workspace builds offline with an empty registry.
//!
//! Four pieces:
//!
//! - [`json`]: a small JSON value model ([`Json`]), the [`ToJson`] trait,
//!   compact and pretty writers with a correct escaper, and a
//!   recursive-descent parser ([`Json::parse`]) so artifacts can be read
//!   back and round-trip-tested without serde.
//! - [`metrics`]: a [`MetricsRegistry`] of named counters, gauges and
//!   fixed-bucket latency [`Histogram`]s with p50/p95/p99/max readout.
//! - [`lineage`]: causal lineage tracing — per-update lifecycle records
//!   ([`LineageRecorder`]) with hop counts, propagation-latency
//!   histograms per direction/hop, and Chrome-trace / Graphviz exports.
//! - [`ring`]: a bounded [`RingBuffer`] that counts what it drops —
//!   the backing store for in-memory trace sinks.
//! - [`timing`]: a tiny wall-clock bench harness (warmup + N iterations,
//!   median/min) replacing criterion for the workspace benches.
//! - [`timeseries`]: flight-recorder telemetry — in-run sampling of the
//!   metric registry at a virtual-time cadence into a delta-encoded
//!   bounded ring ([`TimeSeries`]), declarative health watchdogs, and
//!   wall-clock span profiling of engine phases ([`SpanStats`]).

pub mod json;
pub mod lineage;
pub mod metrics;
pub mod ring;
pub mod timeseries;
pub mod timing;

pub use json::{FromJson, Json, JsonError, ToJson};
pub use lineage::{LineageEvent, LineageRecorder, Stage, UpdateId};
pub use metrics::{Histogram, MetricId, MetricsRegistry};
pub use ring::RingBuffer;
pub use timeseries::{
    SpanId, SpanStats, TelemetryConfig, TimeSeries, WatchAlert, WatchKind, WatchdogSpec,
};
pub use timing::{bench, BenchResult, BenchSuite};
