//! Causal lineage tracing: the full lifecycle of every write.
//!
//! The paper's argument (Theorem 1, Lemma 1, the Section 6 counting
//! claims) is about the *path* an update takes — origin write → MCS
//! propagation → IS-process read → inter-system channel → remote IS
//! write → remote apply. This module records that path per update and
//! derives the artifacts the aggregate counters cannot provide:
//!
//! * per-update **lifecycle records** ([`LineageEvent`]), each stamped
//!   with virtual time, the system/process it happened at and the
//!   update's **hop count** (inter-system link traversals from the
//!   origin system);
//! * cross-system **propagation-latency histograms** per direction
//!   ([`LineageRecorder::direction_latencies`]) and per hop count
//!   ([`LineageRecorder::hop_latencies`]);
//! * a happens-before DAG of update occurrences, exportable as Graphviz
//!   DOT ([`LineageRecorder::to_dot`]) and as **Chrome trace-event
//!   JSON** ([`LineageRecorder::to_chrome_trace`]) loadable in Perfetto
//!   (`ui.perfetto.dev`) or `chrome://tracing`.
//!
//! This crate depends on nothing, so identities are plain integers: an
//! [`UpdateId`] packs `(origin system, origin process, per-origin
//! sequence number)` into a `u64` — exactly the triple that makes
//! `cmi-types::Value` globally unique, so every protocol message that
//! carries a value already carries its lineage identity. Recording is
//! driven from `cmi-core`; everything here is pure accumulation and
//! export, and an absent recorder costs nothing (see `DESIGN.md` §10).

use std::collections::BTreeMap;
use std::fmt;

use crate::json::{Json, ToJson};
use crate::metrics::Histogram;

/// Globally unique identity of one application write.
///
/// Packs `(origin system, origin process index, per-origin sequence
/// number)` as `system << 48 | proc << 32 | seq`. The packing is stable
/// and ordered: updates sort by origin system, then process, then
/// issue order.
///
/// # Example
///
/// ```
/// use cmi_obs::lineage::UpdateId;
///
/// let u = UpdateId::pack(1, 3, 42);
/// assert_eq!((u.system(), u.proc(), u.seq()), (1, 3, 42));
/// assert_eq!(u.to_string(), "S1.p3#42");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UpdateId(pub u64);

impl UpdateId {
    /// Packs the identifying triple of a write.
    pub fn pack(system: u16, proc: u16, seq: u32) -> Self {
        UpdateId((u64::from(system) << 48) | (u64::from(proc) << 32) | u64::from(seq))
    }

    /// The origin system index.
    pub fn system(self) -> u16 {
        (self.0 >> 48) as u16
    }

    /// The origin process index within its system.
    pub fn proc(self) -> u16 {
        (self.0 >> 32) as u16
    }

    /// The per-origin sequence number.
    pub fn seq(self) -> u32 {
        self.0 as u32
    }
}

impl fmt::Display for UpdateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}.p{}#{}", self.system(), self.proc(), self.seq())
    }
}

/// One lifecycle stage of an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// The application process issued the write (hop 0).
    Issued,
    /// A replica in the **origin** system applied the update.
    ReplicaApplied,
    /// An IS-process read the value back (`Propagate_out`'s `r(x)v`).
    IsRead,
    /// The pair left on an inter-system link (first transmission).
    FrameSent,
    /// The reliable transport retransmitted a frame carrying the pair.
    Retransmitted,
    /// The receiver discarded a duplicate frame carrying the pair.
    DedupDropped,
    /// The remote IS-process issued its `Propagate_in` write.
    RemoteWritten,
    /// A replica in a **non-origin** system applied the update.
    RemoteApplied,
}

impl Stage {
    /// Stable kebab-case name (used in exports and the CLI).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Issued => "issued",
            Stage::ReplicaApplied => "replica-applied",
            Stage::IsRead => "is-read",
            Stage::FrameSent => "frame-sent",
            Stage::Retransmitted => "retransmitted",
            Stage::DedupDropped => "dedup-dropped",
            Stage::RemoteWritten => "remote-written",
            Stage::RemoteApplied => "remote-applied",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineageEvent {
    /// The update this event belongs to.
    pub update: UpdateId,
    /// Lifecycle stage.
    pub stage: Stage,
    /// System index where the event happened.
    pub system: u16,
    /// Process index (within `system`) where the event happened.
    pub proc: u16,
    /// Virtual time, nanoseconds.
    pub at_ns: u64,
    /// The update's hop count at `system` (0 in the origin system).
    pub hop: u32,
    /// Peer system for link events (`FrameSent`, `Retransmitted`,
    /// `DedupDropped`, `RemoteWritten`: the other end of the link).
    pub peer: Option<u16>,
}

/// Accumulates lineage events and derives the export artifacts.
///
/// Hops are tracked per `(update, system)`: the origin registers at
/// hop 0 when issued, and every `remote_written` registers the
/// receiving system at `hop(sender) + 1`. Recording methods are cheap
/// (one `Vec` push plus map upkeep) and the recorder is only ever
/// allocated when lineage is enabled, so disabled runs pay nothing.
#[derive(Debug, Clone, Default)]
pub struct LineageRecorder {
    events: Vec<LineageEvent>,
    /// `(update, system) -> hop`.
    hops: BTreeMap<(u64, u16), u32>,
    /// `update -> issue time (ns)`.
    issued_at: BTreeMap<u64, u64>,
    /// `update -> causally preceding update by the same origin process`.
    parent: BTreeMap<u64, u64>,
    /// `(system, proc) -> last update issued there`.
    last_issued: BTreeMap<(u16, u16), u64>,
}

impl LineageRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        LineageRecorder::default()
    }

    /// Records the issue of `update` by its origin process (hop 0). The
    /// program-order parent — the origin's previous write, if any — is
    /// derived here.
    pub fn issued(&mut self, update: UpdateId, at_ns: u64) {
        let key = (update.system(), update.proc());
        if let Some(&prev) = self.last_issued.get(&key) {
            self.parent.insert(update.0, prev);
        }
        self.last_issued.insert(key, update.0);
        self.issued_at.insert(update.0, at_ns);
        self.hops.insert((update.0, update.system()), 0);
        self.push(
            update,
            Stage::Issued,
            update.system(),
            update.proc(),
            at_ns,
            None,
        );
    }

    /// Records a replica applying `update` at `(system, proc)`. The
    /// stage is [`Stage::ReplicaApplied`] in the origin system and
    /// [`Stage::RemoteApplied`] elsewhere.
    pub fn applied(&mut self, update: UpdateId, system: u16, proc: u16, at_ns: u64) {
        let stage = if system == update.system() {
            Stage::ReplicaApplied
        } else {
            Stage::RemoteApplied
        };
        self.push(update, stage, system, proc, at_ns, None);
    }

    /// Records the IS-process read of `Propagate_out` (the `r(x)v` that
    /// forges the causal edge before transmission).
    pub fn is_read(&mut self, update: UpdateId, system: u16, proc: u16, at_ns: u64) {
        self.push(update, Stage::IsRead, system, proc, at_ns, None);
    }

    /// Records the first transmission of the pair on a link towards
    /// `to_system`.
    pub fn frame_sent(
        &mut self,
        update: UpdateId,
        system: u16,
        proc: u16,
        to_system: u16,
        at_ns: u64,
    ) {
        self.push(
            update,
            Stage::FrameSent,
            system,
            proc,
            at_ns,
            Some(to_system),
        );
    }

    /// Records a reliable-transport retransmission of the pair.
    pub fn retransmitted(
        &mut self,
        update: UpdateId,
        system: u16,
        proc: u16,
        to_system: u16,
        at_ns: u64,
    ) {
        self.push(
            update,
            Stage::Retransmitted,
            system,
            proc,
            at_ns,
            Some(to_system),
        );
    }

    /// Records the receiver dropping a duplicate frame carrying the pair.
    pub fn dedup_dropped(
        &mut self,
        update: UpdateId,
        system: u16,
        proc: u16,
        from_system: u16,
        at_ns: u64,
    ) {
        self.push(
            update,
            Stage::DedupDropped,
            system,
            proc,
            at_ns,
            Some(from_system),
        );
    }

    /// Records the remote IS-process issuing its `Propagate_in` write in
    /// `system`, having received the pair from `from_system`. Registers
    /// the update's hop count at `system` as `hop(from_system) + 1`.
    pub fn remote_written(
        &mut self,
        update: UpdateId,
        system: u16,
        proc: u16,
        from_system: u16,
        at_ns: u64,
    ) {
        let hop = self.hops.get(&(update.0, from_system)).map_or(1, |h| h + 1);
        self.hops.entry((update.0, system)).or_insert(hop);
        self.push(
            update,
            Stage::RemoteWritten,
            system,
            proc,
            at_ns,
            Some(from_system),
        );
    }

    fn push(
        &mut self,
        update: UpdateId,
        stage: Stage,
        system: u16,
        proc: u16,
        at_ns: u64,
        peer: Option<u16>,
    ) {
        let hop = self.hops.get(&(update.0, system)).copied().unwrap_or(0);
        self.events.push(LineageEvent {
            update,
            stage,
            system,
            proc,
            at_ns,
            hop,
            peer,
        });
    }

    // ---- accessors -----------------------------------------------------

    /// All events, in recording (chronological) order.
    pub fn events(&self) -> &[LineageEvent] {
        &self.events
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Every traced update, sorted.
    pub fn updates(&self) -> Vec<UpdateId> {
        self.issued_at.keys().map(|&u| UpdateId(u)).collect()
    }

    /// The events of one update, in chronological order.
    pub fn events_of(&self, update: UpdateId) -> Vec<LineageEvent> {
        self.events
            .iter()
            .filter(|e| e.update == update)
            .copied()
            .collect()
    }

    /// The update's hop count at `system`, if it reached that system.
    pub fn hop(&self, update: UpdateId, system: u16) -> Option<u32> {
        self.hops.get(&(update.0, system)).copied()
    }

    /// The largest hop count the update reached.
    pub fn max_hop(&self, update: UpdateId) -> u32 {
        self.hops
            .range((update.0, 0)..=(update.0, u16::MAX))
            .map(|(_, &h)| h)
            .max()
            .unwrap_or(0)
    }

    /// The systems the update was written in (origin + every
    /// `remote_written`), with hop counts, sorted by system.
    pub fn systems_reached(&self, update: UpdateId) -> Vec<(u16, u32)> {
        self.hops
            .range((update.0, 0)..=(update.0, u16::MAX))
            .map(|(&(_, s), &h)| (s, h))
            .collect()
    }

    /// The update's program-order parent (the origin process's previous
    /// write), if any.
    pub fn parent(&self, update: UpdateId) -> Option<UpdateId> {
        self.parent.get(&update.0).map(|&u| UpdateId(u))
    }

    /// When the update was issued, if traced.
    pub fn issued_at(&self, update: UpdateId) -> Option<u64> {
        self.issued_at.get(&update.0).copied()
    }

    /// Number of distinct inter-system link crossings of the update
    /// (distinct `(from, to)` pairs over `FrameSent` events — faults may
    /// retransmit a crossing, never add one).
    pub fn crossings(&self, update: UpdateId) -> usize {
        let mut seen = std::collections::BTreeSet::new();
        for e in &self.events {
            if e.update == update && e.stage == Stage::FrameSent {
                if let Some(to) = e.peer {
                    seen.insert((e.system, to));
                }
            }
        }
        seen.len()
    }

    // ---- derivations ---------------------------------------------------

    /// Propagation-latency histograms per direction: for every
    /// [`Stage::RemoteApplied`] event, `at - issued_at` is observed in
    /// the `"S{origin}->S{dest}"` histogram.
    pub fn direction_latencies(&self) -> BTreeMap<String, Histogram> {
        let mut out: BTreeMap<String, Histogram> = BTreeMap::new();
        for e in self.remote_applies() {
            let key = format!("S{}->S{}", e.update.system(), e.system);
            out.entry(key)
                .or_default()
                .observe(self.latency_of(&e) as f64);
        }
        out
    }

    /// Propagation-latency histograms per hop count: for every
    /// [`Stage::RemoteApplied`] event, `at - issued_at` is observed in
    /// the histogram of the update's hop count at the applying system.
    pub fn hop_latencies(&self) -> BTreeMap<u32, Histogram> {
        let mut out: BTreeMap<u32, Histogram> = BTreeMap::new();
        for e in self.remote_applies() {
            out.entry(e.hop)
                .or_default()
                .observe(self.latency_of(&e) as f64);
        }
        out
    }

    fn remote_applies(&self) -> impl Iterator<Item = LineageEvent> + '_ {
        self.events
            .iter()
            .filter(|e| e.stage == Stage::RemoteApplied && self.issued_at.contains_key(&e.update.0))
            .copied()
    }

    fn latency_of(&self, e: &LineageEvent) -> u64 {
        e.at_ns.saturating_sub(self.issued_at[&e.update.0])
    }

    /// A human-readable one-line-per-event lifecycle of `update`.
    pub fn lifecycle(&self, update: UpdateId) -> String {
        let mut out = String::new();
        for e in self.events_of(update) {
            let peer = match (e.stage, e.peer) {
                (Stage::FrameSent | Stage::Retransmitted, Some(p)) => format!(" -> S{p}"),
                (Stage::DedupDropped | Stage::RemoteWritten, Some(p)) => format!(" <- S{p}"),
                _ => String::new(),
            };
            out.push_str(&format!(
                "t={:>12}ns  S{}.p{}  hop {}  {}{}\n",
                e.at_ns, e.system, e.proc, e.hop, e.stage, peer
            ));
        }
        out
    }

    /// Exports the lineage as Chrome trace-event JSON (the format
    /// Perfetto and `chrome://tracing` load).
    ///
    /// Stable shape: a top-level object with `"traceEvents"` (array) and
    /// `"displayTimeUnit"`; every event carries exactly the fields
    /// `name`, `cat`, `ph`, `ts` (microseconds), `pid` (system), `tid`
    /// (process) and `args` (`update`, `hop`, plus `peer` on link
    /// events); per-update spans additionally carry `dur`. The golden
    /// test in `cmi-cli` pins these names.
    pub fn to_chrome_trace(&self) -> Json {
        let mut events: Vec<Json> = Vec::new();
        // One "X" (complete) span per (update, system): first to last
        // event of the update in that system, named after the update.
        let mut spans: BTreeMap<(u64, u16), (u64, u64, u16, u32)> = BTreeMap::new();
        for e in &self.events {
            let entry = spans
                .entry((e.update.0, e.system))
                .or_insert((e.at_ns, e.at_ns, e.proc, e.hop));
            entry.0 = entry.0.min(e.at_ns);
            entry.1 = entry.1.max(e.at_ns);
        }
        for (&(u, system), &(first, last, proc, hop)) in &spans {
            let update = UpdateId(u);
            events.push(Json::obj([
                ("name", Json::Str(update.to_string())),
                ("cat", Json::Str("lineage-span".into())),
                ("ph", Json::Str("X".into())),
                ("ts", Json::Num(first as f64 / 1e3)),
                ("dur", Json::Num((last - first) as f64 / 1e3)),
                ("pid", u64::from(system).to_json()),
                ("tid", u64::from(proc).to_json()),
                (
                    "args",
                    Json::obj([
                        ("update", Json::Str(update.to_string())),
                        ("hop", u64::from(hop).to_json()),
                    ]),
                ),
            ]));
        }
        for e in &self.events {
            let mut args = vec![
                ("update".to_string(), Json::Str(e.update.to_string())),
                ("hop".to_string(), u64::from(e.hop).to_json()),
            ];
            if let Some(p) = e.peer {
                args.push(("peer".to_string(), Json::Str(format!("S{p}"))));
            }
            events.push(Json::obj([
                ("name", Json::Str(e.stage.name().into())),
                ("cat", Json::Str("lineage".into())),
                ("ph", Json::Str("i".into())),
                ("ts", Json::Num(e.at_ns as f64 / 1e3)),
                ("pid", u64::from(e.system).to_json()),
                ("tid", u64::from(e.proc).to_json()),
                ("args", Json::Obj(args)),
            ]));
        }
        Json::obj([
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::Str("ms".into())),
        ])
    }

    /// Exports the happens-before DAG of update occurrences as Graphviz
    /// DOT: one node per `(update, system)` occurrence, solid edges for
    /// program order at the origin (parent chains), dashed edges for
    /// link crossings (`FrameSent` from one system to the next).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph lineage {\n  rankdir=LR;\n  node [fontsize=10];\n");
        let mut nodes = std::collections::BTreeSet::new();
        for e in &self.events {
            nodes.insert((e.update.0, e.system));
            if e.stage == Stage::FrameSent {
                if let Some(to) = e.peer {
                    nodes.insert((e.update.0, to));
                }
            }
        }
        for &(u, s) in &nodes {
            let update = UpdateId(u);
            let hop = self.hops.get(&(u, s)).copied().unwrap_or(0);
            let _ = writeln!(
                out,
                "  \"{update}@S{s}\" [label=\"{update}\\nS{s} hop {hop}\", shape=box];"
            );
        }
        // Program order at the origin system.
        for (&child, &parent) in &self.parent {
            let (c, p) = (UpdateId(child), UpdateId(parent));
            let _ = writeln!(out, "  \"{p}@S{s}\" -> \"{c}@S{s}\";", s = c.system());
        }
        // Link crossings (one edge per distinct crossing).
        let mut seen = std::collections::BTreeSet::new();
        for e in &self.events {
            if e.stage == Stage::FrameSent {
                if let Some(to) = e.peer {
                    if seen.insert((e.update.0, e.system, to)) {
                        let _ = writeln!(
                            out,
                            "  \"{u}@S{a}\" -> \"{u}@S{b}\" [style=dashed, color=gray40];",
                            u = e.update,
                            a = e.system,
                            b = to
                        );
                    }
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_hop_recorder() -> LineageRecorder {
        // S0.p0 writes twice; both propagate S0 -> S1 -> S2 (a chain).
        let mut r = LineageRecorder::new();
        for seq in 1..=2u32 {
            let u = UpdateId::pack(0, 0, seq);
            let base = u64::from(seq) * 1_000_000;
            r.issued(u, base);
            r.applied(u, 0, 1, base + 1_000_000); // origin replica
            r.is_read(u, 0, 2, base + 1_000_000); // isp of S0
            r.frame_sent(u, 0, 2, 1, base + 1_000_000);
            r.remote_written(u, 1, 2, 0, base + 11_000_000);
            r.applied(u, 1, 0, base + 12_000_000);
            r.is_read(u, 1, 3, base + 12_000_000);
            r.frame_sent(u, 1, 3, 2, base + 12_000_000);
            r.remote_written(u, 2, 0, 1, base + 22_000_000);
            r.applied(u, 2, 1, base + 23_000_000);
        }
        r
    }

    #[test]
    fn update_id_packs_and_unpacks() {
        let u = UpdateId::pack(u16::MAX, 7, u32::MAX);
        assert_eq!(u.system(), u16::MAX);
        assert_eq!(u.proc(), 7);
        assert_eq!(u.seq(), u32::MAX);
        assert!(UpdateId::pack(0, 0, 1) < UpdateId::pack(0, 0, 2));
        assert!(UpdateId::pack(0, 9, 9) < UpdateId::pack(1, 0, 0));
    }

    #[test]
    fn hops_count_link_traversals() {
        let r = two_hop_recorder();
        let u = UpdateId::pack(0, 0, 1);
        assert_eq!(r.hop(u, 0), Some(0));
        assert_eq!(r.hop(u, 1), Some(1));
        assert_eq!(r.hop(u, 2), Some(2));
        assert_eq!(r.max_hop(u), 2);
        assert_eq!(r.systems_reached(u), vec![(0, 0), (1, 1), (2, 2)]);
        assert_eq!(r.crossings(u), 2);
    }

    #[test]
    fn parent_is_the_origin_previous_write() {
        let r = two_hop_recorder();
        let (u1, u2) = (UpdateId::pack(0, 0, 1), UpdateId::pack(0, 0, 2));
        assert_eq!(r.parent(u1), None);
        assert_eq!(r.parent(u2), Some(u1));
    }

    #[test]
    fn direction_latencies_measure_issue_to_remote_apply() {
        let r = two_hop_recorder();
        let d = r.direction_latencies();
        assert_eq!(
            d.keys().cloned().collect::<Vec<_>>(),
            vec!["S0->S1", "S0->S2"]
        );
        assert_eq!(d["S0->S1"].count(), 2);
        assert_eq!(d["S0->S1"].max(), 12_000_000.0);
        assert_eq!(d["S0->S2"].max(), 23_000_000.0);
    }

    #[test]
    fn hop_latencies_bucket_by_hop_count() {
        let r = two_hop_recorder();
        let h = r.hop_latencies();
        assert_eq!(h.keys().copied().collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(h[&1].count(), 2);
        assert_eq!(h[&2].count(), 2);
        assert!(h[&2].min() > h[&1].max());
    }

    #[test]
    fn chrome_trace_has_stable_fields_and_parses() {
        let r = two_hop_recorder();
        let json = r.to_chrome_trace();
        let text = json.to_pretty();
        let parsed = Json::parse(&text).unwrap();
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        assert_eq!(
            parsed.get("displayTimeUnit").and_then(Json::as_str),
            Some("ms")
        );
        for e in events {
            for field in ["name", "cat", "ph", "ts", "pid", "tid", "args"] {
                assert!(e.get(field).is_some(), "missing {field}: {e:?}");
            }
            let args = e.get("args").unwrap();
            assert!(args.get("update").and_then(Json::as_str).is_some());
            assert!(args.get("hop").and_then(Json::as_u64).is_some());
        }
        // Both span and instant phases appear.
        let phases: std::collections::BTreeSet<_> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(Json::as_str))
            .collect();
        assert!(phases.contains("X") && phases.contains("i"), "{phases:?}");
    }

    #[test]
    fn dot_export_has_occurrence_nodes_and_crossing_edges() {
        let r = two_hop_recorder();
        let dot = r.to_dot();
        assert!(dot.starts_with("digraph lineage"));
        assert!(dot.contains("\"S0.p0#1@S0\""));
        assert!(dot.contains("\"S0.p0#1@S2\""));
        // Program order: #1 -> #2 at the origin.
        assert!(dot.contains("\"S0.p0#1@S0\" -> \"S0.p0#2@S0\";"));
        // Crossing: S0 -> S1, dashed.
        assert!(dot.contains("\"S0.p0#1@S0\" -> \"S0.p0#1@S1\" [style=dashed"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn retransmits_and_dedups_do_not_add_crossings() {
        let mut r = LineageRecorder::new();
        let u = UpdateId::pack(0, 0, 1);
        r.issued(u, 0);
        r.frame_sent(u, 0, 2, 1, 1_000);
        r.retransmitted(u, 0, 2, 1, 2_000);
        r.retransmitted(u, 0, 2, 1, 3_000);
        r.dedup_dropped(u, 1, 2, 0, 4_000);
        r.remote_written(u, 1, 2, 0, 5_000);
        assert_eq!(r.crossings(u), 1);
        assert_eq!(r.hop(u, 1), Some(1));
        let stages: Vec<_> = r.events_of(u).iter().map(|e| e.stage).collect();
        assert_eq!(
            stages,
            vec![
                Stage::Issued,
                Stage::FrameSent,
                Stage::Retransmitted,
                Stage::Retransmitted,
                Stage::DedupDropped,
                Stage::RemoteWritten,
            ]
        );
    }

    #[test]
    fn lifecycle_is_readable() {
        let r = two_hop_recorder();
        let text = r.lifecycle(UpdateId::pack(0, 0, 1));
        assert!(text.contains("issued"));
        assert!(text.contains("frame-sent -> S1"));
        assert!(text.contains("remote-written <- S1"));
        assert_eq!(text.lines().count(), 10);
    }

    #[test]
    fn empty_recorder_exports_empty_artifacts() {
        let r = LineageRecorder::new();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert!(r.updates().is_empty());
        assert!(r.direction_latencies().is_empty());
        let trace = r.to_chrome_trace();
        assert_eq!(
            trace
                .get("traceEvents")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(0)
        );
    }
}
