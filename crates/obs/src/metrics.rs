//! Named counters, gauges and fixed-bucket latency histograms.
//!
//! The registry is the single sink for everything a run counts or times:
//! the sim engine, channels, memory protocols and IS-processes all write
//! here, and [`MetricsRegistry::to_json`] snapshots the lot into one
//! diffable artifact. Names are dot-separated paths
//! (`"engine.events_dispatched"`, `"channel.a0->a1.messages"`); the
//! registry stores them in sorted order so output is deterministic.

use std::collections::BTreeMap;

use crate::json::{Json, ToJson};

/// Default histogram bucket upper bounds, in nanoseconds: a 1-2-5 ladder
/// from 1 µs to 1000 s. Wide enough for every virtual-time latency the
/// simulator produces and for wall-clock bench timings.
const DEFAULT_BOUNDS: [f64; 28] = [
    1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5, 1e6, 2e6, 5e6, 1e7, 2e7, 5e7, 1e8, 2e8, 5e8, 1e9,
    2e9, 5e9, 1e10, 2e10, 5e10, 1e11, 2e11, 5e11, 1e12,
];

/// A fixed-bucket histogram with exact count/sum/min/max and
/// bucket-resolution quantiles.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One count per bound, plus the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(&DEFAULT_BOUNDS)
    }
}

impl Histogram {
    /// A histogram over the given ascending bucket upper bounds (an
    /// overflow bucket is added implicitly).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (exact), or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (exact), or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) at bucket resolution: the upper
    /// bound of the first bucket whose cumulative count reaches
    /// `ceil(q * count)`, clamped to the exact observed min/max. The
    /// extremes are exact: rank 1 is the tracked min, the last rank the
    /// tracked max. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        if rank == 1 {
            // The first order statistic is the minimum — the bucket's
            // upper bound would overstate it.
            return self.min;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = self.bounds.get(i).copied().unwrap_or(self.max);
                return upper.clamp(self.min, self.max);
            }
        }
        self.max()
    }

    /// Folds `other` into `self` (cross-shard aggregation).
    ///
    /// Identical bucket layouts merge exactly (bucket-wise addition).
    /// Differing layouts refold each of `other`'s buckets into `self` at
    /// the bucket's representative value (its upper bound, clamped to
    /// `other`'s observed range) — quantiles then carry the coarser of
    /// the two resolutions, while `count`, `sum`, `min` and `max` stay
    /// exact in every case.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.bounds == other.bounds {
            for (a, b) in self.counts.iter_mut().zip(&other.counts) {
                *a += b;
            }
        } else {
            for (i, &c) in other.counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let rep = other
                    .bounds
                    .get(i)
                    .copied()
                    .unwrap_or(other.max)
                    .clamp(other.min, other.max);
                let idx = self
                    .bounds
                    .iter()
                    .position(|&b| rep <= b)
                    .unwrap_or(self.bounds.len());
                self.counts[idx] += c;
            }
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// JSON snapshot: count, sum, mean, min, max, p50/p95/p99.
    pub fn snapshot(&self) -> Json {
        Json::obj([
            ("count", self.count.to_json()),
            ("sum", self.sum.to_json()),
            ("mean", self.mean().to_json()),
            ("min", self.min().to_json()),
            ("p50", self.quantile(0.50).to_json()),
            ("p95", self.quantile(0.95).to_json()),
            ("p99", self.quantile(0.99).to_json()),
            ("max", self.max().to_json()),
        ])
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        self.snapshot()
    }
}

/// An interned metric key: a handle returned by
/// [`MetricsRegistry::key`] that turns every subsequent counter bump,
/// gauge update or histogram observation into a plain `Vec` index —
/// no hashing, no tree walk, no string allocation on the hot path.
///
/// Ids are registry-local: a `MetricId` is only meaningful with the
/// registry that issued it (same names interned in the same order yield
/// the same ids, which is what lets cloned registries share handles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MetricId(u32);

impl MetricId {
    /// Slot index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A registry of named counters, gauges and histograms.
///
/// Names are interned: [`key`](MetricsRegistry::key) resolves a name to
/// a [`MetricId`] once, and the `*_id` methods are index lookups. The
/// `&str` methods remain as thin compatibility wrappers (resolve, then
/// delegate), so existing call sites and the JSON snapshot are
/// unchanged. A name that was interned but never written does not
/// appear in snapshots — interning is free.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    /// Name → id, sorted — the sorted iteration order of every snapshot.
    ids: BTreeMap<String, MetricId>,
    /// One slot per id; `None` = interned but never written.
    counters: Vec<Option<u64>>,
    gauges: Vec<Option<f64>>,
    histograms: Vec<Option<Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Resolves `name` to its interned id, interning it on first use.
    /// Interning alone records nothing: the name stays out of snapshots
    /// until a counter/gauge/histogram write touches it.
    pub fn key(&mut self, name: &str) -> MetricId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = MetricId(u32::try_from(self.counters.len()).expect("too many metric names"));
        self.ids.insert(name.to_string(), id);
        self.counters.push(None);
        self.gauges.push(None);
        self.histograms.push(None);
        id
    }

    /// The interned name of `id`, if `id` came from this registry.
    pub fn name(&self, id: MetricId) -> Option<&str> {
        self.ids
            .iter()
            .find(|(_, &i)| i == id)
            .map(|(k, _)| k.as_str())
    }

    /// Increments counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        let id = self.key(name);
        self.inc_id(id);
    }

    /// Increments counter `name` by `delta`.
    pub fn add(&mut self, name: &str, delta: u64) {
        let id = self.key(name);
        self.add_id(id, delta);
    }

    /// Increments the counter behind `id` by one (index lookup).
    #[inline]
    pub fn inc_id(&mut self, id: MetricId) {
        self.add_id(id, 1);
    }

    /// Increments the counter behind `id` by `delta` (index lookup).
    #[inline]
    pub fn add_id(&mut self, id: MetricId, delta: u64) {
        let slot = &mut self.counters[id.index()];
        *slot = Some(slot.unwrap_or(0) + delta);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.ids
            .get(name)
            .and_then(|id| self.counters[id.index()])
            .unwrap_or(0)
    }

    /// Current value of the counter behind `id` (0 if never touched).
    pub fn counter_id(&self, id: MetricId) -> u64 {
        self.counters[id.index()].unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.ids
            .iter()
            .filter_map(|(k, id)| self.counters[id.index()].map(|v| (k.as_str(), v)))
    }

    /// Sets gauge `name` to `v`.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        let id = self.key(name);
        self.set_gauge_id(id, v);
    }

    /// Sets the gauge behind `id` to `v` (index lookup).
    #[inline]
    pub fn set_gauge_id(&mut self, id: MetricId, v: f64) {
        self.gauges[id.index()] = Some(v);
    }

    /// Raises gauge `name` to `v` if `v` is larger (high-water marks).
    pub fn gauge_max(&mut self, name: &str, v: f64) {
        let id = self.key(name);
        self.gauge_max_id(id, v);
    }

    /// Raises the gauge behind `id` to `v` if `v` is larger.
    #[inline]
    pub fn gauge_max_id(&mut self, id: MetricId, v: f64) {
        let slot = &mut self.gauges[id.index()];
        if v > slot.unwrap_or(f64::NEG_INFINITY) {
            *slot = Some(v);
        }
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.ids.get(name).and_then(|id| self.gauges[id.index()])
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.ids
            .iter()
            .filter_map(|(k, id)| self.gauges[id.index()].map(|v| (k.as_str(), v)))
    }

    /// Records `v` into histogram `name` (created on first use with the
    /// default latency buckets).
    pub fn observe(&mut self, name: &str, v: f64) {
        let id = self.key(name);
        self.observe_id(id, v);
    }

    /// Records `v` into the histogram behind `id` (index lookup; the
    /// histogram is created on first observation with the default
    /// latency buckets).
    #[inline]
    pub fn observe_id(&mut self, id: MetricId, v: f64) {
        self.histograms[id.index()]
            .get_or_insert_with(Histogram::default)
            .observe(v);
    }

    /// Histogram `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.ids
            .get(name)
            .and_then(|id| self.histograms[id.index()].as_ref())
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.ids.iter().filter_map(|(k, id)| {
            self.histograms[id.index()]
                .as_ref()
                .map(|h| (k.as_str(), h))
        })
    }

    /// `true` if nothing has been recorded (interned-but-unwritten names
    /// do not count).
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(Option::is_none)
            && self.gauges.iter().all(Option::is_none)
            && self.histograms.iter().all(Option::is_none)
    }

    /// Folds every metric of `other` into `self` (counters add, gauges
    /// take the maximum, histograms merge bucket-wise when shaped alike).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, oid) in &other.ids {
            if let Some(v) = other.counters[oid.index()] {
                self.add(k, v);
            }
            if let Some(v) = other.gauges[oid.index()] {
                self.gauge_max(k, v);
            }
            if let Some(h) = &other.histograms[oid.index()] {
                let id = self.key(k);
                self.histograms[id.index()]
                    .get_or_insert_with(|| Histogram::new(&h.bounds))
                    .merge(h);
            }
        }
    }

    /// JSON snapshot of the whole registry:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn snapshot(&self) -> Json {
        Json::obj([
            (
                "counters",
                Json::Obj(
                    self.counters()
                        .map(|(k, v)| (k.to_string(), v.to_json()))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges()
                        .map(|(k, v)| (k.to_string(), v.to_json()))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms()
                        .map(|(k, h)| (k.to_string(), h.snapshot()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Logical equality: two registries are equal when they record the same
/// values under the same names, regardless of interning order.
impl PartialEq for MetricsRegistry {
    fn eq(&self, other: &Self) -> bool {
        self.counters().eq(other.counters())
            && self.gauges().eq(other.gauges())
            && self.histograms().eq(other.histograms())
    }
}

impl ToJson for MetricsRegistry {
    fn to_json(&self) -> Json {
        self.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("x"), 0);
        m.inc("x");
        m.add("x", 4);
        assert_eq!(m.counter("x"), 5);
        assert_eq!(m.counters().collect::<Vec<_>>(), vec![("x", 5)]);
    }

    #[test]
    fn gauges_set_and_high_water() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("depth", 3.0);
        m.gauge_max("depth", 1.0);
        assert_eq!(m.gauge("depth"), Some(3.0));
        m.gauge_max("depth", 7.0);
        assert_eq!(m.gauge("depth"), Some(7.0));
    }

    #[test]
    fn histogram_quantiles_on_a_known_distribution() {
        // 100 observations: 1µs..100µs in 1µs steps (nanoseconds).
        let mut h = Histogram::default();
        for i in 1..=100 {
            h.observe(i as f64 * 1e3);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), 1e3);
        assert_eq!(h.max(), 1e5);
        assert!((h.mean() - 50.5e3).abs() < 1.0);
        // p50 → rank 50 → the (..=50µs] bucket; p99 → rank 99 → (..=100µs].
        assert_eq!(h.quantile(0.50), 5e4);
        assert_eq!(h.quantile(0.99), 1e5);
        // p100 is the exact max even though the bucket bound is higher.
        assert_eq!(h.quantile(1.0), 1e5);
    }

    #[test]
    fn histogram_single_value_is_exact_everywhere() {
        let mut h = Histogram::default();
        h.observe(1234.0);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 1234.0, "q={q}");
        }
    }

    #[test]
    fn histogram_overflow_bucket_reports_max() {
        let mut h = Histogram::new(&[10.0, 20.0]);
        h.observe(5.0);
        h.observe(1000.0);
        assert_eq!(h.quantile(1.0), 1000.0);
        // Rank 1 is the exact minimum, not its bucket's upper bound.
        assert_eq!(h.quantile(0.25), 5.0);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_panic() {
        let _ = Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero_at_every_q() {
        let h = Histogram::default();
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0.0, "q={q}");
        }
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn exact_bucket_boundary_values_land_in_their_bucket() {
        // A value equal to a bound belongs to that bound's bucket
        // (observe uses v <= b), so the quantile readout is exact for
        // boundary observations — no off-by-one into the next bucket.
        let mut h = Histogram::new(&[10.0, 20.0, 50.0]);
        h.observe(10.0);
        h.observe(20.0);
        h.observe(50.0);
        assert_eq!(h.count(), 3);
        // rank 1 → (..=10], rank 2 → (..=20], rank 3 → (..=50].
        assert_eq!(h.quantile(1.0 / 3.0), 10.0);
        assert_eq!(h.quantile(2.0 / 3.0), 20.0);
        assert_eq!(h.quantile(1.0), 50.0);
    }

    #[test]
    fn quantile_rank_one_is_the_exact_min() {
        let mut h = Histogram::new(&[10.0, 20.0]);
        h.observe(7.0);
        h.observe(15.0);
        // q=0 and q=0.5 both rank the first of two observations — the
        // exact minimum, not its bucket's upper bound (10).
        assert_eq!(h.quantile(0.0), 7.0);
        assert_eq!(h.quantile(0.5), 7.0);
        assert_eq!(h.quantile(0.75), 15.0);
        assert_eq!(h.quantile(1.0), 15.0);
    }

    #[test]
    fn single_sample_on_a_boundary_is_exact_everywhere() {
        let mut h = Histogram::new(&[10.0, 20.0]);
        h.observe(20.0);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 20.0, "q={q}");
        }
        assert_eq!((h.min(), h.max(), h.mean()), (20.0, 20.0, 20.0));
    }

    #[test]
    fn quantiles_are_monotonic_in_q() {
        let mut h = Histogram::default();
        for v in [500.0, 1e3, 1.5e3, 2e3, 7e3, 1e4, 3e5, 1e13] {
            h.observe(v);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
        for w in qs.windows(2) {
            assert!(
                h.quantile(w[0]) <= h.quantile(w[1]),
                "quantile not monotonic between q={} and q={}",
                w[0],
                w[1]
            );
        }
        // Overflow-bucket observation caps at the exact max.
        assert_eq!(h.quantile(1.0), 1e13);
        // Below-first-bound observation clamps to the exact min.
        assert_eq!(h.quantile(0.0), 500.0);
    }

    #[test]
    fn merge_combines_counters_gauges_histograms() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.add("n", 2);
        b.add("n", 3);
        b.add("only_b", 1);
        a.set_gauge("g", 1.0);
        b.set_gauge("g", 4.0);
        a.observe("h", 1e3);
        b.observe("h", 2e3);
        a.merge(&b);
        assert_eq!(a.counter("n"), 5);
        assert_eq!(a.counter("only_b"), 1);
        assert_eq!(a.gauge("g"), Some(4.0));
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 2e3);
    }

    #[test]
    fn merging_an_empty_histogram_is_a_no_op() {
        let mut a = Histogram::default();
        a.observe(5e3);
        let before = a.clone();
        a.merge(&Histogram::default());
        assert_eq!(a, before);
        // And merging into an empty histogram copies the other exactly.
        let mut empty = Histogram::default();
        empty.merge(&before);
        assert_eq!(empty, before);
        assert_eq!(empty.min(), 5e3);
        assert_eq!(empty.max(), 5e3);
    }

    #[test]
    fn same_bounds_merge_is_exact_bucketwise() {
        let mut a = Histogram::new(&[10.0, 20.0, 50.0]);
        let mut b = Histogram::new(&[10.0, 20.0, 50.0]);
        for v in [5.0, 15.0, 45.0] {
            a.observe(v);
        }
        for v in [8.0, 18.0, 1000.0] {
            b.observe(v);
        }
        a.merge(&b);
        // Equivalent to observing all six values in one histogram.
        let mut all = Histogram::new(&[10.0, 20.0, 50.0]);
        for v in [5.0, 15.0, 45.0, 8.0, 18.0, 1000.0] {
            all.observe(v);
        }
        assert_eq!(a, all);
        assert_eq!(a.count(), 6);
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.quantile(1.0), 1000.0);
    }

    #[test]
    fn differing_bounds_merge_keeps_exact_aggregates() {
        let mut coarse = Histogram::new(&[100.0, 1000.0]);
        let mut fine = Histogram::new(&[10.0, 20.0, 50.0, 500.0]);
        coarse.observe(80.0);
        for v in [5.0, 15.0, 400.0, 9000.0] {
            fine.observe(v);
        }
        coarse.merge(&fine);
        assert_eq!(coarse.count(), 5);
        assert_eq!(coarse.sum(), 80.0 + 5.0 + 15.0 + 400.0 + 9000.0);
        assert_eq!(coarse.min(), 5.0);
        assert_eq!(coarse.max(), 9000.0);
        // Refolded buckets land where their representative value falls:
        // 5 and 15 (bounds 10, 20) → (..=100]; 400 (bound 500) → (..=1000];
        // 9000 (overflow, clamped to max) → overflow.
        assert_eq!(coarse.quantile(0.0), 5.0);
        assert_eq!(coarse.quantile(1.0), 9000.0);
    }

    #[test]
    fn merged_quantiles_are_stable_at_bucket_resolution() {
        // Splitting one observation stream across two histograms and
        // merging must yield the same quantiles as observing the whole
        // stream in one histogram (same bounds → exact merge).
        let mut whole = Histogram::default();
        let mut left = Histogram::default();
        let mut right = Histogram::default();
        for i in 1..=1000u64 {
            let v = (i * 977 % 100_000) as f64 + 1.0;
            whole.observe(v);
            if i % 2 == 0 {
                left.observe(v);
            } else {
                right.observe(v);
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.sum(), whole.sum());
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(left.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn registry_merge_uses_histogram_merge_across_bounds() {
        // Registry merge no longer silently drops histograms with a
        // different bucket layout — counts and sums survive.
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.observe("h", 1e3);
        let mut custom = Histogram::new(&[10.0]);
        custom.observe(5.0);
        let id = b.key("h");
        b.histograms[id.index()] = Some(custom);
        a.merge(&b);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 5.0);
        assert_eq!(h.max(), 1e3);
    }

    #[test]
    fn interned_and_str_apis_agree() {
        let mut m = MetricsRegistry::new();
        let id = m.key("events");
        assert_eq!(m.key("events"), id, "key() is idempotent");
        m.inc_id(id);
        m.inc("events");
        m.add_id(id, 3);
        assert_eq!(m.counter("events"), 5);
        assert_eq!(m.counter_id(id), 5);
        assert_eq!(m.name(id), Some("events"));
        let g = m.key("depth");
        m.gauge_max_id(g, 2.0);
        m.gauge_max("depth", 1.0);
        assert_eq!(m.gauge("depth"), Some(2.0));
        m.set_gauge_id(g, 0.5);
        assert_eq!(m.gauge("depth"), Some(0.5));
        let h = m.key("lat");
        m.observe_id(h, 1e3);
        m.observe("lat", 2e3);
        assert_eq!(m.histogram("lat").unwrap().count(), 2);
    }

    #[test]
    fn interning_alone_records_nothing() {
        let mut m = MetricsRegistry::new();
        let _ = m.key("channel.a0->a1.dropped");
        let _ = m.key("zzz.gauge");
        assert!(m.is_empty());
        assert_eq!(m.counters().count(), 0);
        // The snapshot of a registry with only interned names is the
        // empty snapshot — pre-resolving keys can never change output.
        assert_eq!(m.snapshot(), MetricsRegistry::new().snapshot());
        assert_eq!(m, MetricsRegistry::new());
    }

    #[test]
    fn snapshot_ordering_is_sorted_regardless_of_intern_order() {
        // Intern/write names in reverse order; the snapshot must come
        // out sorted by name exactly as the old BTreeMap layout did.
        let mut m = MetricsRegistry::new();
        for name in ["z.last", "m.middle", "a.first"] {
            m.inc(name);
        }
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a.first", "m.middle", "z.last"]);
        let json = m.snapshot().to_pretty();
        let (a, z) = (json.find("a.first").unwrap(), json.find("z.last").unwrap());
        assert!(a < z, "JSON members sorted by name");
    }

    #[test]
    fn seeded_randomized_interleaving_of_both_apis() {
        // A SplitMix64-style stream drives a random interleaving of the
        // id and str APIs over the same names; a shadow model using only
        // the str API must end up logically equal.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let names = ["alpha", "beta", "gamma", "delta", "epsilon"];
        let mut fast = MetricsRegistry::new();
        let mut shadow = MetricsRegistry::new();
        let ids: Vec<MetricId> = names.iter().map(|n| fast.key(n)).collect();
        for _ in 0..2000 {
            let r = next();
            let i = (r as usize) % names.len();
            let delta = (r >> 8) % 7;
            match (r >> 32) % 6 {
                0 => {
                    fast.inc_id(ids[i]);
                    shadow.inc(names[i]);
                }
                1 => {
                    fast.inc(names[i]);
                    shadow.inc(names[i]);
                }
                2 => {
                    fast.add_id(ids[i], delta);
                    shadow.add(names[i], delta);
                }
                3 => {
                    fast.gauge_max_id(ids[i], delta as f64);
                    shadow.gauge_max(names[i], delta as f64);
                }
                4 => {
                    fast.observe_id(ids[i], (delta + 1) as f64 * 1e3);
                    shadow.observe(names[i], (delta + 1) as f64 * 1e3);
                }
                _ => {
                    fast.observe(names[i], (delta + 1) as f64 * 1e3);
                    shadow.observe(names[i], (delta + 1) as f64 * 1e3);
                }
            }
        }
        assert_eq!(fast, shadow);
        assert_eq!(
            fast.snapshot().to_pretty(),
            shadow.snapshot().to_pretty(),
            "byte-identical artifacts from either API"
        );
    }

    #[test]
    fn cloned_registry_shares_ids() {
        let mut m = MetricsRegistry::new();
        let id = m.key("n");
        m.inc_id(id);
        let mut c = m.clone();
        c.inc_id(id);
        assert_eq!(c.counter("n"), 2);
        assert_eq!(m.counter("n"), 1);
    }

    #[test]
    fn snapshot_serializes_and_parses() {
        let mut m = MetricsRegistry::new();
        m.add("events", 10);
        m.set_gauge("queue_depth_max", 4.0);
        m.observe("latency_ns", 5e6);
        let json = m.snapshot();
        let parsed = Json::parse(&json.to_pretty()).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("events"))
                .and_then(Json::as_u64),
            Some(10)
        );
        let h = parsed
            .get("histograms")
            .and_then(|h| h.get("latency_ns"))
            .unwrap();
        assert_eq!(h.get("count").and_then(Json::as_u64), Some(1));
        assert_eq!(h.get("max").and_then(Json::as_f64), Some(5e6));
    }
}
