//! A bounded ring buffer that counts what it drops.
//!
//! Backing store for in-memory trace sinks: a run can keep the last N
//! trace entries without unbounded growth, and the drop count makes the
//! truncation visible in the emitted artifact instead of silent.

use std::collections::VecDeque;

/// Fixed-capacity FIFO; pushing onto a full buffer evicts the oldest
/// element and increments the drop counter.
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    capacity: usize,
    items: VecDeque<T>,
    dropped: u64,
}

impl<T> RingBuffer<T> {
    /// A buffer holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBuffer {
            capacity,
            items: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// Appends `item`, evicting the oldest element if full.
    pub fn push(&mut self, item: T) {
        if self.items.len() == self.capacity {
            self.items.pop_front();
            self.dropped += 1;
        }
        self.items.push_back(item);
    }

    /// Elements currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Number of elements currently held.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if nothing is held.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Maximum number of elements held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many elements were evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains the buffer, oldest first (drop count is retained).
    pub fn drain(&mut self) -> Vec<T> {
        self.items.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_everything_under_capacity() {
        let mut r = RingBuffer::new(4);
        r.push(1);
        r.push(2);
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn drop_accounting_evicts_oldest_first() {
        let mut r = RingBuffer::new(3);
        for i in 0..10 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
        assert_eq!(r.dropped(), 7);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![7, 8, 9]);
    }

    #[test]
    fn drain_empties_but_keeps_drop_count() {
        let mut r = RingBuffer::new(2);
        r.push('a');
        r.push('b');
        r.push('c');
        assert_eq!(r.drain(), vec!['b', 'c']);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = RingBuffer::<u8>::new(0);
    }
}
