//! Flight-recorder telemetry: in-run time-series sampling of the metric
//! registry, delta-encoded into a bounded ring, with declarative health
//! watchdogs and wall-clock span profiling of the engine's phases.
//!
//! Every other metric in the workspace is an end-of-run aggregate: the
//! registry is snapshotted once, after `run()` returns, so a partition
//! that sheds thousands of writes mid-run and heals before quiescence is
//! invisible in the artifacts. [`TimeSeries`] closes that gap: the engine
//! calls [`TimeSeries::sample`] at a configurable *virtual-time* cadence,
//! and each sample records only the series that changed, as deltas —
//! quiet periods cost nothing, and the full history of a counter is the
//! running sum of its deltas.
//!
//! Memory is bounded by construction: when the ring reaches capacity the
//! oldest half is downsampled by merging adjacent sample pairs (deltas
//! add, the later timestamp wins), so totals stay exact while the oldest
//! history loses resolution instead of the recorder losing data or
//! growing without bound — the classic flight-recorder trade.
//!
//! The timeline contains *only* virtual-time-deterministic data (counter
//! and gauge values sampled at virtual instants): two runs of the same
//! seeded scenario produce byte-identical [`TimeSeries::to_jsonl`]
//! output. Wall-clock span profiling ([`SpanStats`]) is kept in a
//! separate structure that never feeds the timeline.

use std::collections::BTreeMap;

use crate::json::{Json, ToJson};
use crate::metrics::MetricsRegistry;

/// Configuration of the telemetry recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryConfig {
    /// Sampling cadence in virtual nanoseconds (default 1 ms).
    pub every_ns: u64,
    /// Maximum samples held before the oldest half is downsampled
    /// (default 4096, floor 4).
    pub capacity: usize,
    /// Health watchdogs evaluated at every sample.
    pub watchdogs: Vec<WatchdogSpec>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            every_ns: 1_000_000,
            capacity: 4096,
            watchdogs: Vec::new(),
        }
    }
}

impl TelemetryConfig {
    /// Sets the sampling cadence in virtual milliseconds.
    pub fn with_every_ms(mut self, ms: u64) -> Self {
        self.every_ns = ms.max(1) * 1_000_000;
        self
    }

    /// Sets the ring capacity (floor 4, so pair-merge always frees room).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(4);
        self
    }

    /// Adds a health watchdog.
    pub fn with_watchdog(mut self, w: WatchdogSpec) -> Self {
        self.watchdogs.push(w);
        self
    }
}

/// What a watchdog tests at each sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchKind {
    /// Fires while the metric's current value exceeds the limit.
    Above,
    /// Fires while the metric's current value is below the limit.
    Below,
    /// Fires while the metric's rate of change, per virtual second,
    /// exceeds the limit (counters: events/sec; gauges: growth/sec).
    RateAbove,
}

impl WatchKind {
    /// Stable lowercase name (`above` | `below` | `rate_above`).
    pub fn as_str(self) -> &'static str {
        match self {
            WatchKind::Above => "above",
            WatchKind::Below => "below",
            WatchKind::RateAbove => "rate_above",
        }
    }

    /// Parses the stable name back.
    pub fn parse(s: &str) -> Option<WatchKind> {
        match s {
            "above" => Some(WatchKind::Above),
            "below" => Some(WatchKind::Below),
            "rate_above" => Some(WatchKind::RateAbove),
            _ => None,
        }
    }
}

/// A declarative health watchdog: a threshold or rate-of-change test on
/// one registry metric, evaluated at every telemetry sample.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchdogSpec {
    /// Registry metric name (counter or gauge), e.g.
    /// `isp.send_queue_depth_max` or `transport.retransmits`.
    pub metric: String,
    /// The test.
    pub kind: WatchKind,
    /// The limit the test compares against.
    pub limit: f64,
}

impl WatchdogSpec {
    /// A new watchdog.
    pub fn new(metric: impl Into<String>, kind: WatchKind, limit: f64) -> Self {
        WatchdogSpec {
            metric: metric.into(),
            kind,
            limit,
        }
    }
}

/// A structured alert emitted when a watchdog's condition first becomes
/// true (edge-triggered: a persistent breach alerts once, then re-arms
/// when the condition clears).
#[derive(Debug, Clone, PartialEq)]
pub struct WatchAlert {
    /// Virtual instant of the sample that tripped the watchdog.
    pub at_ns: u64,
    /// The watched metric.
    pub metric: String,
    /// The test that fired.
    pub kind: WatchKind,
    /// Observed value (for `rate_above`: the observed rate per second).
    pub value: f64,
    /// The configured limit.
    pub limit: f64,
}

impl WatchAlert {
    /// One-line human rendering, stable enough to grep in CI.
    pub fn line(&self) -> String {
        format!(
            "WATCHDOG ALERT: {} {} {} (observed {}) at t={}ms",
            self.metric,
            self.kind.as_str(),
            self.limit,
            self.value,
            self.at_ns / 1_000_000
        )
    }
}

impl ToJson for WatchAlert {
    fn to_json(&self) -> Json {
        Json::obj([
            ("at_ns", self.at_ns.to_json()),
            ("metric", Json::Str(self.metric.clone())),
            ("kind", Json::Str(self.kind.as_str().to_string())),
            ("value", self.value.to_json()),
            ("limit", self.limit.to_json()),
        ])
    }
}

/// Interned ids of the engine phases the span profiler times. The ids
/// are fixed at compile time — recording a span is two array adds, no
/// hashing, no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanId {
    /// Message delivery: `Actor::on_message` dispatch.
    Deliver = 0,
    /// Timer delivery: `Actor::on_timer` dispatch.
    Timer = 1,
    /// Streaming run events to the installed tap.
    TapFeed = 2,
    /// The MCS protocol step inside a delivery.
    ProtocolStep = 3,
    /// The reliable-transport sublayer (frames, acks, retransmits).
    Transport = 4,
    /// The online monitor consuming ops and lineage events.
    MonitorTap = 5,
}

/// Number of profiled phases.
pub const SPAN_COUNT: usize = 6;

/// Stable phase names, indexed by [`SpanId`].
pub const SPAN_NAMES: [&str; SPAN_COUNT] = [
    "deliver",
    "timer",
    "tap_feed",
    "protocol_step",
    "transport",
    "monitor_tap",
];

/// Wall-clock totals per engine phase. This is profiling data — it is
/// *never* written into the deterministic timeline; it only appears in
/// the telemetry report block and the CLI summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanStats {
    totals_ns: [u64; SPAN_COUNT],
    counts: [u64; SPAN_COUNT],
}

impl SpanStats {
    /// An empty profile.
    pub fn new() -> Self {
        SpanStats::default()
    }

    /// Records one timed span of phase `id`.
    #[inline]
    pub fn record(&mut self, id: SpanId, ns: u64) {
        let i = id as usize;
        self.totals_ns[i] += ns;
        self.counts[i] += 1;
    }

    /// Total wall-clock nanoseconds recorded for phase `id`.
    pub fn total_ns(&self, id: SpanId) -> u64 {
        self.totals_ns[id as usize]
    }

    /// Spans recorded for phase `id`.
    pub fn count(&self, id: SpanId) -> u64 {
        self.counts[id as usize]
    }

    /// `true` if no span was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Human lines, one per phase with at least one span.
    pub fn lines(&self) -> Vec<String> {
        (0..SPAN_COUNT)
            .filter(|&i| self.counts[i] > 0)
            .map(|i| {
                let avg = self.totals_ns[i] / self.counts[i];
                format!(
                    "span {}: {} calls, {} ns total, {} ns avg",
                    SPAN_NAMES[i], self.counts[i], self.totals_ns[i], avg
                )
            })
            .collect()
    }
}

impl ToJson for SpanStats {
    fn to_json(&self) -> Json {
        Json::Obj(
            (0..SPAN_COUNT)
                .filter(|&i| self.counts[i] > 0)
                .map(|i| {
                    (
                        SPAN_NAMES[i].to_string(),
                        Json::obj([
                            ("count", self.counts[i].to_json()),
                            ("total_ns", self.totals_ns[i].to_json()),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

/// One delta-encoded sample: the virtual instant plus `(series, delta)`
/// for every series whose value changed since the previous sample.
#[derive(Debug, Clone, PartialEq)]
struct Sample {
    at_ns: u64,
    points: Vec<(u32, f64)>,
}

/// Per-watchdog evaluation state.
#[derive(Debug, Clone, PartialEq)]
struct WatchState {
    spec: WatchdogSpec,
    /// Condition was true at the previous sample (edge-trigger re-arm).
    breached: bool,
    /// Metric value at the previous sample (rate evaluation).
    last: f64,
}

/// The flight recorder: samples a [`MetricsRegistry`] at a virtual-time
/// cadence, keeps a bounded delta-encoded timeline, evaluates watchdogs,
/// and exports JSON-lines plus Chrome-trace counter events.
///
/// Like `LineageRecorder`, the recorder doubles as the report: the
/// engine drives [`sample`](TimeSeries::sample) during the run, then the
/// finished recorder travels inside `RunReport`.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    every_ns: u64,
    capacity: usize,
    next_due_ns: u64,
    /// Series id → metric name (counters and gauges share the
    /// namespace; every metric the workspace records has a unique name).
    names: Vec<String>,
    index: BTreeMap<String, u32>,
    /// Last sampled absolute value per series (0 before first sight).
    prev: Vec<f64>,
    samples: Vec<Sample>,
    /// Virtual instant of the previous sample tick (rate basis).
    last_tick_ns: u64,
    samples_taken: u64,
    downsample_rounds: u64,
    merged_samples: u64,
    watchdogs: Vec<WatchState>,
    alerts: Vec<WatchAlert>,
    spans: Option<SpanStats>,
}

impl TimeSeries {
    /// A recorder with the given configuration.
    pub fn new(cfg: TelemetryConfig) -> Self {
        TimeSeries {
            every_ns: cfg.every_ns.max(1),
            capacity: cfg.capacity.max(4),
            next_due_ns: 0,
            names: Vec::new(),
            index: BTreeMap::new(),
            prev: Vec::new(),
            samples: Vec::new(),
            last_tick_ns: 0,
            samples_taken: 0,
            downsample_rounds: 0,
            merged_samples: 0,
            watchdogs: cfg
                .watchdogs
                .into_iter()
                .map(|spec| WatchState {
                    spec,
                    breached: false,
                    last: 0.0,
                })
                .collect(),
            alerts: Vec::new(),
            spans: None,
        }
    }

    /// `true` once virtual time `now_ns` has reached the next cadence
    /// tick — the engine's one cheap check per event.
    #[inline]
    pub fn is_due(&self, now_ns: u64) -> bool {
        now_ns >= self.next_due_ns
    }

    /// Takes one sample of `metrics` at virtual instant `at_ns`: records
    /// a delta point for every changed series, evaluates the watchdogs,
    /// and advances the cadence deadline past `at_ns`.
    pub fn sample(&mut self, at_ns: u64, metrics: &MetricsRegistry) {
        let mut points: Vec<(u32, f64)> = Vec::new();
        for (name, v) in metrics.counters() {
            self.point(&mut points, name, v as f64);
        }
        for (name, v) in metrics.gauges() {
            self.point(&mut points, name, v);
        }
        points.sort_unstable_by_key(|&(id, _)| id);
        self.eval_watchdogs(at_ns);
        if !points.is_empty() {
            if self.samples.len() >= self.capacity {
                self.downsample_oldest();
            }
            self.samples.push(Sample { at_ns, points });
        }
        self.samples_taken += 1;
        self.last_tick_ns = at_ns;
        while self.next_due_ns <= at_ns {
            self.next_due_ns += self.every_ns;
        }
    }

    fn point(&mut self, out: &mut Vec<(u32, f64)>, name: &str, v: f64) {
        let id = match self.index.get(name) {
            Some(&id) => id,
            None => {
                let id = u32::try_from(self.names.len()).expect("too many telemetry series");
                self.index.insert(name.to_string(), id);
                self.names.push(name.to_string());
                self.prev.push(0.0);
                id
            }
        };
        let prev = self.prev[id as usize];
        if v != prev {
            out.push((id, v - prev));
            self.prev[id as usize] = v;
        }
    }

    fn eval_watchdogs(&mut self, at_ns: u64) {
        let dt_secs = (at_ns.saturating_sub(self.last_tick_ns)) as f64 / 1e9;
        for w in &mut self.watchdogs {
            let cur = self
                .index
                .get(&w.spec.metric)
                .map(|&id| self.prev[id as usize])
                .unwrap_or(0.0);
            let (fired, observed) = match w.spec.kind {
                WatchKind::Above => (cur > w.spec.limit, cur),
                WatchKind::Below => (cur < w.spec.limit, cur),
                WatchKind::RateAbove => {
                    if dt_secs > 0.0 {
                        let rate = (cur - w.last) / dt_secs;
                        (rate > w.spec.limit, rate)
                    } else {
                        (false, 0.0)
                    }
                }
            };
            if fired && !w.breached {
                self.alerts.push(WatchAlert {
                    at_ns,
                    metric: w.spec.metric.clone(),
                    kind: w.spec.kind,
                    value: observed,
                    limit: w.spec.limit,
                });
            }
            w.breached = fired;
            w.last = cur;
        }
    }

    /// Halves the oldest half of the ring by merging adjacent sample
    /// pairs: deltas add (so running totals stay exact), the later
    /// timestamp wins. Recent history keeps full resolution.
    fn downsample_oldest(&mut self) {
        let half = self.samples.len() / 2;
        if half < 2 {
            return;
        }
        let old: Vec<Sample> = self.samples.drain(..half).collect();
        let mut merged: Vec<Sample> = Vec::with_capacity(half / 2 + 1);
        for pair in old.chunks(2) {
            if pair.len() == 2 {
                let mut acc: BTreeMap<u32, f64> = pair[0].points.iter().copied().collect();
                for &(id, d) in &pair[1].points {
                    *acc.entry(id).or_insert(0.0) += d;
                }
                merged.push(Sample {
                    at_ns: pair[1].at_ns,
                    points: acc.into_iter().filter(|&(_, d)| d != 0.0).collect(),
                });
                self.merged_samples += 1;
            } else {
                merged.push(pair[0].clone());
            }
        }
        self.samples.splice(0..0, merged);
        self.downsample_rounds += 1;
    }

    /// Attaches the wall-clock span profile (kept out of the timeline).
    pub fn set_spans(&mut self, spans: SpanStats) {
        if !spans.is_empty() {
            self.spans = Some(spans);
        }
    }

    /// The span profile, if any span was recorded.
    pub fn spans(&self) -> Option<&SpanStats> {
        self.spans.as_ref()
    }

    /// Samples currently stored (post-downsampling).
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// Cadence ticks taken over the whole run.
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// Distinct series that ever changed.
    pub fn series_count(&self) -> usize {
        self.names.len()
    }

    /// Downsampling rounds the ring went through.
    pub fn downsample_rounds(&self) -> u64 {
        self.downsample_rounds
    }

    /// Watchdog alerts, in firing order.
    pub fn alerts(&self) -> &[WatchAlert] {
        &self.alerts
    }

    /// Sampling cadence in virtual nanoseconds.
    pub fn every_ns(&self) -> u64 {
        self.every_ns
    }

    /// Reconstructs the absolute value history of one series:
    /// `(at_ns, value)` per stored sample where the series changed.
    /// Empty if the series never changed.
    pub fn series(&self, name: &str) -> Vec<(u64, f64)> {
        let Some(&id) = self.index.get(name) else {
            return Vec::new();
        };
        let mut total = 0.0;
        let mut out = Vec::new();
        for s in &self.samples {
            for &(pid, d) in &s.points {
                if pid == id {
                    total += d;
                    out.push((s.at_ns, total));
                }
            }
        }
        out
    }

    /// All series names, in first-appearance order.
    pub fn series_names(&self) -> &[String] {
        &self.names
    }

    /// Exports the timeline as JSON-lines: a header line with the
    /// recorder configuration, then one compact object per sample —
    /// `{"t":<at_ns>,"d":{"<series>":<delta>,...}}` with the changed
    /// series sorted by name. Deterministic: two runs of the same seeded
    /// scenario produce byte-identical output.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &Json::obj([
                ("telemetry", 1u64.to_json()),
                ("every_ns", self.every_ns.to_json()),
                ("capacity", (self.capacity as u64).to_json()),
            ])
            .to_compact(),
        );
        out.push('\n');
        for s in &self.samples {
            let mut d: Vec<(String, Json)> = s
                .points
                .iter()
                .map(|&(id, delta)| (self.names[id as usize].clone(), delta.to_json()))
                .collect();
            d.sort_by(|a, b| a.0.cmp(&b.0));
            out.push_str(&Json::obj([("t", s.at_ns.to_json()), ("d", Json::Obj(d))]).to_compact());
            out.push('\n');
        }
        out
    }

    /// Parses a [`to_jsonl`](TimeSeries::to_jsonl) export back into a
    /// recorder holding the identical series (watchdogs, alerts and
    /// spans are not part of the timeline and come back empty).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse_jsonl(text: &str) -> Result<TimeSeries, String> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (_, header) = lines.next().ok_or("empty telemetry timeline")?;
        let h = Json::parse(header).map_err(|e| format!("header: {e}"))?;
        if h.get("telemetry").and_then(Json::as_u64) != Some(1) {
            return Err("header is not a telemetry timeline (want \"telemetry\":1)".into());
        }
        let every_ns = h
            .get("every_ns")
            .and_then(Json::as_u64)
            .ok_or("header: missing every_ns")?;
        let capacity = h
            .get("capacity")
            .and_then(Json::as_u64)
            .ok_or("header: missing capacity")? as usize;
        let mut ts = TimeSeries::new(TelemetryConfig {
            every_ns,
            capacity,
            watchdogs: Vec::new(),
        });
        for (i, line) in lines {
            let v = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            let at_ns = v
                .get("t")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("line {}: missing t", i + 1))?;
            let d = v
                .get("d")
                .and_then(Json::as_object)
                .ok_or_else(|| format!("line {}: missing d", i + 1))?;
            let mut points = Vec::with_capacity(d.len());
            for (name, delta) in d {
                let delta = delta
                    .as_f64()
                    .ok_or_else(|| format!("line {}: {name} is not a number", i + 1))?;
                points.push((name.as_str(), delta));
            }
            ts.absorb(at_ns, &points);
        }
        Ok(ts)
    }

    /// Appends one decoded sample (parse path — no watchdogs, no
    /// downsampling: the producer already bounded the timeline).
    fn absorb(&mut self, at_ns: u64, decoded: &[(&str, f64)]) {
        let mut points = Vec::with_capacity(decoded.len());
        for &(name, delta) in decoded {
            let id = match self.index.get(name) {
                Some(&id) => id,
                None => {
                    let id = u32::try_from(self.names.len()).expect("too many telemetry series");
                    self.index.insert(name.to_string(), id);
                    self.names.push(name.to_string());
                    self.prev.push(0.0);
                    id
                }
            };
            self.prev[id as usize] += delta;
            points.push((id, delta));
        }
        points.sort_unstable_by_key(|&(id, _)| id);
        self.samples.push(Sample { at_ns, points });
        self.samples_taken += 1;
        self.last_tick_ns = at_ns;
    }

    /// Exports the timeline as Chrome-trace counter events (`ph: "C"`),
    /// one per changed series per sample with the reconstructed absolute
    /// value — drop the file on ui.perfetto.dev and the counters render
    /// as tracks next to an X17 lineage trace.
    pub fn to_chrome_trace(&self) -> Json {
        let mut totals: Vec<f64> = vec![0.0; self.names.len()];
        let mut events = Vec::new();
        for s in &self.samples {
            for &(id, d) in &s.points {
                totals[id as usize] += d;
                events.push(Json::obj([
                    ("name", Json::Str(self.names[id as usize].clone())),
                    ("cat", Json::Str("telemetry".to_string())),
                    ("ph", Json::Str("C".to_string())),
                    ("ts", (s.at_ns as f64 / 1e3).to_json()),
                    ("pid", 1u64.to_json()),
                    ("tid", 1u64.to_json()),
                    (
                        "args",
                        Json::obj([("value", totals[id as usize].to_json())]),
                    ),
                ]));
            }
        }
        Json::obj([
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::Str("ms".to_string())),
        ])
    }

    /// Human summary lines for the CLI's `[telemetry]` block.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "samples: {} stored / {} ticks, {} series, every {} ms\n",
            self.samples.len(),
            self.samples_taken,
            self.names.len(),
            self.every_ns / 1_000_000
        );
        if self.downsample_rounds > 0 {
            out.push_str(&format!(
                "downsampled: {} rounds, {} pair-merges\n",
                self.downsample_rounds, self.merged_samples
            ));
        }
        out.push_str(&format!("alerts: {}\n", self.alerts.len()));
        for a in &self.alerts {
            out.push_str(&a.line());
            out.push('\n');
        }
        if let Some(spans) = &self.spans {
            for line in spans.lines() {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }
}

impl ToJson for TimeSeries {
    /// The report block: configuration, volume counters and alerts.
    /// Everything here except `spans` is virtual-time deterministic;
    /// `spans` (wall clock) is only present when profiling recorded at
    /// least one span.
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("every_ns".to_string(), self.every_ns.to_json()),
            ("capacity".to_string(), (self.capacity as u64).to_json()),
            ("samples".to_string(), (self.samples.len() as u64).to_json()),
            ("samples_taken".to_string(), self.samples_taken.to_json()),
            ("series".to_string(), (self.names.len() as u64).to_json()),
            (
                "downsample_rounds".to_string(),
                self.downsample_rounds.to_json(),
            ),
            ("merged_samples".to_string(), self.merged_samples.to_json()),
            (
                "alerts".to_string(),
                Json::Arr(self.alerts.iter().map(ToJson::to_json).collect()),
            ),
        ];
        if let Some(spans) = &self.spans {
            fields.push(("spans".to_string(), spans.to_json()));
        }
        Json::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(pairs: &[(&str, u64)], gauges: &[(&str, f64)]) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        for &(k, v) in pairs {
            m.add(k, v);
        }
        for &(k, v) in gauges {
            m.set_gauge(k, v);
        }
        m
    }

    #[test]
    fn deltas_record_only_changed_series() {
        let mut ts = TimeSeries::new(TelemetryConfig::default());
        let mut m = reg(&[("a", 5), ("b", 1)], &[("g", 2.0)]);
        ts.sample(1_000_000, &m);
        assert_eq!(ts.sample_count(), 1);
        m.add("a", 3);
        ts.sample(2_000_000, &m);
        // b and g unchanged: the second sample carries only a's delta.
        assert_eq!(ts.sample_count(), 2);
        assert_eq!(ts.series("a"), vec![(1_000_000, 5.0), (2_000_000, 8.0)]);
        assert_eq!(ts.series("b"), vec![(1_000_000, 1.0)]);
        assert_eq!(ts.series("g"), vec![(1_000_000, 2.0)]);
    }

    #[test]
    fn quiet_samples_are_not_stored() {
        let mut ts = TimeSeries::new(TelemetryConfig::default());
        let m = reg(&[("a", 5)], &[]);
        ts.sample(1_000_000, &m);
        ts.sample(2_000_000, &m);
        ts.sample(3_000_000, &m);
        assert_eq!(ts.sample_count(), 1);
        assert_eq!(ts.samples_taken(), 3);
    }

    #[test]
    fn cadence_deadline_advances_past_now() {
        let mut ts = TimeSeries::new(TelemetryConfig::default().with_every_ms(2));
        assert!(ts.is_due(0));
        let m = reg(&[("a", 1)], &[]);
        ts.sample(0, &m);
        assert!(!ts.is_due(1_999_999));
        assert!(ts.is_due(2_000_000));
        // A large virtual-time jump advances the deadline past now in
        // one sample, not one tick per elapsed period.
        ts.sample(9_000_000, &m);
        assert!(!ts.is_due(9_999_999));
        assert!(ts.is_due(10_000_000));
    }

    #[test]
    fn ring_is_bounded_and_downsampling_preserves_totals() {
        let mut ts = TimeSeries::new(TelemetryConfig::default().with_capacity(8));
        let mut m = MetricsRegistry::new();
        for i in 0..100u64 {
            m.add("n", 1);
            ts.sample(i * 1_000_000, &m);
        }
        assert!(ts.sample_count() <= 8, "ring stays bounded");
        assert!(ts.downsample_rounds() > 0);
        let series = ts.series("n");
        // Totals are exact: the last reconstructed point is the true
        // final counter value even after repeated pair-merging.
        assert_eq!(series.last().unwrap().1, 100.0);
        // Timestamps stay monotone through the merge.
        for w in series.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn jsonl_round_trips_to_identical_series() {
        let mut ts = TimeSeries::new(TelemetryConfig::default().with_every_ms(3));
        let mut m = MetricsRegistry::new();
        // A seeded pseudo-random workload over a few series.
        let mut state = 0x1234_5678u64;
        for step in 0..50u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            m.add("events", state % 7);
            if state % 3 == 0 {
                m.add("sheds", 1);
            }
            m.set_gauge("depth", (state % 11) as f64);
            ts.sample(step * 3_000_000, &m);
        }
        let text = ts.to_jsonl();
        let back = TimeSeries::parse_jsonl(&text).unwrap();
        for name in ["events", "sheds", "depth"] {
            assert_eq!(ts.series(name), back.series(name), "{name}");
        }
        // Re-serialization is byte-identical: the codec is canonical.
        assert_eq!(back.to_jsonl(), text);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(TimeSeries::parse_jsonl("").is_err());
        assert!(TimeSeries::parse_jsonl("{\"nope\":1}").is_err());
        let good_header = "{\"telemetry\":1,\"every_ns\":1000000,\"capacity\":16}";
        assert!(TimeSeries::parse_jsonl(good_header).is_ok());
        let bad = format!("{good_header}\n{{\"t\":1}}");
        assert!(TimeSeries::parse_jsonl(&bad).is_err());
        let bad = format!("{good_header}\n{{\"t\":1,\"d\":{{\"a\":\"x\"}}}}");
        assert!(TimeSeries::parse_jsonl(&bad).is_err());
    }

    #[test]
    fn chrome_trace_counter_events_have_stable_fields() {
        let mut ts = TimeSeries::new(TelemetryConfig::default());
        let mut m = reg(&[("n", 2)], &[]);
        ts.sample(1_000_000, &m);
        m.add("n", 3);
        ts.sample(2_000_000, &m);
        let trace = ts.to_chrome_trace();
        let events = trace.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        for ev in events {
            assert_eq!(ev.get("ph").and_then(Json::as_str), Some("C"));
            assert_eq!(ev.get("cat").and_then(Json::as_str), Some("telemetry"));
            assert!(ev.get("ts").and_then(Json::as_f64).is_some());
            assert!(ev.get("pid").is_some() && ev.get("tid").is_some());
        }
        // Counter events carry reconstructed absolutes, not deltas.
        let v1 = events[0].get("args").and_then(|a| a.get("value")).unwrap();
        let v2 = events[1].get("args").and_then(|a| a.get("value")).unwrap();
        assert_eq!(v1.as_f64(), Some(2.0));
        assert_eq!(v2.as_f64(), Some(5.0));
        assert_eq!(
            trace.get("displayTimeUnit").and_then(Json::as_str),
            Some("ms")
        );
    }

    #[test]
    fn threshold_watchdog_is_edge_triggered() {
        let cfg = TelemetryConfig::default().with_watchdog(WatchdogSpec::new(
            "depth",
            WatchKind::Above,
            10.0,
        ));
        let mut ts = TimeSeries::new(cfg);
        let mut m = MetricsRegistry::new();
        m.set_gauge("depth", 5.0);
        ts.sample(1_000_000, &m);
        assert!(ts.alerts().is_empty());
        m.set_gauge("depth", 15.0);
        ts.sample(2_000_000, &m);
        assert_eq!(ts.alerts().len(), 1, "breach alerts once");
        m.set_gauge("depth", 20.0);
        ts.sample(3_000_000, &m);
        assert_eq!(ts.alerts().len(), 1, "persistent breach stays one alert");
        m.set_gauge("depth", 5.0);
        ts.sample(4_000_000, &m);
        m.set_gauge("depth", 50.0);
        ts.sample(5_000_000, &m);
        assert_eq!(ts.alerts().len(), 2, "re-arms after the condition clears");
        let a = &ts.alerts()[0];
        assert_eq!(a.metric, "depth");
        assert_eq!(a.at_ns, 2_000_000);
        assert_eq!(a.value, 15.0);
        assert!(a.line().contains("WATCHDOG ALERT: depth above 10"));
    }

    #[test]
    fn rate_watchdog_fires_on_fast_growth_only() {
        let cfg = TelemetryConfig::default()
            // more than 1000 events per virtual second is a burst
            .with_watchdog(WatchdogSpec::new("n", WatchKind::RateAbove, 1000.0));
        let mut ts = TimeSeries::new(cfg);
        let mut m = MetricsRegistry::new();
        m.add("n", 1);
        ts.sample(0, &m);
        // +5 over 10ms = 500/sec: under the limit.
        m.add("n", 5);
        ts.sample(10_000_000, &m);
        assert!(ts.alerts().is_empty());
        // +100 over 10ms = 10000/sec: burst.
        m.add("n", 100);
        ts.sample(20_000_000, &m);
        assert_eq!(ts.alerts().len(), 1);
        assert_eq!(ts.alerts()[0].value, 10_000.0);
    }

    #[test]
    fn below_watchdog_and_missing_metric() {
        let cfg = TelemetryConfig::default()
            .with_watchdog(WatchdogSpec::new("health", WatchKind::Below, 1.0))
            .with_watchdog(WatchdogSpec::new("never_written", WatchKind::Above, 5.0));
        let mut ts = TimeSeries::new(cfg);
        let m = reg(&[], &[("health", 0.5)]);
        ts.sample(1_000_000, &m);
        // `health` is below 1.0 → alert; `never_written` reads 0, which
        // is not above 5 → no alert.
        assert_eq!(ts.alerts().len(), 1);
        assert_eq!(ts.alerts()[0].metric, "health");
    }

    #[test]
    fn span_stats_record_and_export() {
        let mut s = SpanStats::new();
        assert!(s.is_empty());
        s.record(SpanId::Deliver, 100);
        s.record(SpanId::Deliver, 300);
        s.record(SpanId::MonitorTap, 50);
        assert_eq!(s.total_ns(SpanId::Deliver), 400);
        assert_eq!(s.count(SpanId::Deliver), 2);
        let json = s.to_json();
        assert_eq!(
            json.get("deliver")
                .and_then(|d| d.get("count"))
                .and_then(Json::as_u64),
            Some(2)
        );
        assert!(json.get("timer").is_none(), "phases without spans omitted");
        let lines = s.lines().join("\n");
        assert!(lines.contains("span deliver: 2 calls"), "{lines}");
    }

    #[test]
    fn report_json_has_alerts_and_optional_spans() {
        let mut ts = TimeSeries::new(TelemetryConfig::default());
        let m = reg(&[("n", 1)], &[]);
        ts.sample(1_000_000, &m);
        let j = ts.to_json();
        assert_eq!(j.get("samples").and_then(Json::as_u64), Some(1));
        assert!(j.get("spans").is_none(), "no spans recorded → no block");
        let mut spans = SpanStats::new();
        spans.record(SpanId::Timer, 7);
        ts.set_spans(spans);
        assert!(ts.to_json().get("spans").is_some());
    }

    #[test]
    fn watchkind_names_round_trip() {
        for k in [WatchKind::Above, WatchKind::Below, WatchKind::RateAbove] {
            assert_eq!(WatchKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(WatchKind::parse("sideways"), None);
    }
}
