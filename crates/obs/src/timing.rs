//! A tiny wall-clock timing harness: warmup, N measured iterations,
//! median/min readout through a [`Histogram`]. Replaces criterion for the
//! workspace benches; each bench target is a plain `main` that prints a
//! table and can dump the results as JSON.

use std::hint::black_box;
use std::time::Instant;

use crate::json::{Json, ToJson};
use crate::metrics::Histogram;

/// Timing results of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (`group/case`).
    pub name: String,
    /// Measured iterations (after warmup).
    pub iters: u32,
    /// Per-iteration wall-clock nanoseconds.
    pub ns: Histogram,
}

impl BenchResult {
    /// Median nanoseconds per iteration (bucket resolution).
    pub fn median_ns(&self) -> f64 {
        self.ns.quantile(0.5)
    }

    /// Fastest iteration in nanoseconds (exact).
    pub fn min_ns(&self) -> f64 {
        self.ns.min()
    }

    /// One-line human rendering.
    pub fn line(&self) -> String {
        format!(
            "{:<40} median {:>12}  min {:>12}  ({} iters)",
            self.name,
            format_ns(self.median_ns()),
            format_ns(self.min_ns()),
            self.iters
        )
    }
}

impl ToJson for BenchResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("iters", self.iters.to_json()),
            ("median_ns", self.median_ns().to_json()),
            ("min_ns", self.min_ns().to_json()),
            ("mean_ns", self.ns.mean().to_json()),
            ("max_ns", self.ns.max().to_json()),
            ("ns", self.ns.to_json()),
        ])
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Runs `f` for `warmup` unmeasured and `iters` measured iterations.
///
/// The closure's result is passed through [`black_box`] so the optimizer
/// cannot delete the work.
///
/// # Panics
///
/// Panics if `iters` is zero.
pub fn bench<R, F: FnMut() -> R>(name: &str, warmup: u32, iters: u32, mut f: F) -> BenchResult {
    assert!(iters > 0, "need at least one measured iteration");
    for _ in 0..warmup {
        black_box(f());
    }
    let mut ns = Histogram::default();
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        ns.observe(t0.elapsed().as_nanos() as f64);
    }
    BenchResult {
        name: name.to_string(),
        iters,
        ns,
    }
}

/// A collection of [`BenchResult`]s that prints a table and serializes to
/// the workspace `BENCH_*.json` shape:
/// `{"suite": ..., "benchmarks": [{"name", "iters", "median_ns", ...}]}`.
#[derive(Debug, Clone)]
pub struct BenchSuite {
    /// Suite name (usually the bench binary's name).
    pub suite: String,
    /// Accumulated results, in run order.
    pub results: Vec<BenchResult>,
}

impl BenchSuite {
    /// An empty suite.
    pub fn new(suite: &str) -> Self {
        BenchSuite {
            suite: suite.to_string(),
            results: Vec::new(),
        }
    }

    /// Runs one case and records (and prints) its result.
    pub fn run<R, F: FnMut() -> R>(&mut self, name: &str, warmup: u32, iters: u32, f: F) {
        let result = bench(name, warmup, iters, f);
        println!("{}", result.line());
        self.results.push(result);
    }

    /// Writes the suite as pretty JSON to `path` (honoring the
    /// `CMI_BENCH_JSON` convention used by the bench binaries).
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_pretty() + "\n")
    }

    /// Emits JSON to `$CMI_BENCH_JSON`-style path if the given
    /// environment variable is set; returns the path written.
    pub fn write_json_from_env(&self, var: &str) -> std::io::Result<Option<String>> {
        match std::env::var(var) {
            Ok(path) if !path.is_empty() => {
                self.write_json(&path)?;
                Ok(Some(path))
            }
            _ => Ok(None),
        }
    }
}

impl ToJson for BenchSuite {
    fn to_json(&self) -> Json {
        Json::obj([
            ("suite", self.suite.to_json()),
            ("benchmarks", self.results.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_all_iterations() {
        let mut calls = 0u32;
        let r = bench("t/counting", 2, 5, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 7, "warmup + measured iterations");
        assert_eq!(r.iters, 5);
        assert_eq!(r.ns.count(), 5);
        assert!(r.min_ns() <= r.median_ns() || r.ns.count() == 1);
    }

    #[test]
    fn suite_serializes_to_bench_json_shape() {
        let mut s = BenchSuite::new("unit");
        s.results.push(bench("t/a", 0, 3, || 1 + 1));
        let json = s.to_json();
        assert_eq!(json.get("suite").and_then(Json::as_str), Some("unit"));
        let benches = json.get("benchmarks").and_then(Json::as_array).unwrap();
        assert_eq!(benches.len(), 1);
        assert_eq!(benches[0].get("name").and_then(Json::as_str), Some("t/a"));
        assert!(benches[0].get("median_ns").and_then(Json::as_f64).is_some());
        // And it parses back with the in-tree parser.
        assert!(Json::parse(&json.to_pretty()).is_ok());
    }

    #[test]
    fn format_ns_picks_sensible_units() {
        assert_eq!(format_ns(500.0), "500 ns");
        assert_eq!(format_ns(1500.0), "1.500 µs");
        assert_eq!(format_ns(2.5e6), "2.500 ms");
        assert_eq!(format_ns(3.0e9), "3.000 s");
    }
}
