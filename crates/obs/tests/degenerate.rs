//! Degenerate-feed regressions for the observability primitives the
//! online monitor leans on.
//!
//! The monitor's evidence buffer depends on the `RingBuffer` accounting
//! invariant (`pushes == len + dropped`), and its forensics narrative
//! replays `LineageRecorder` feeds that real faulty runs produce out of
//! shape: duplicate lifecycle stages, remote applications before any
//! frame was sent, queries for updates never traced. These tests pin
//! current behavior with goldens so a refactor cannot silently change
//! what the monitor sees.

use cmi_obs::{LineageRecorder, RingBuffer, Stage, UpdateId};

/// Tiny in-test splitmix64 — `cmi-obs` is below `cmi-sim` in the
/// dependency order, so it cannot borrow the simulator's RNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

// ---- RingBuffer: the counted-drop invariant -------------------------

#[test]
fn ring_buffer_counts_every_push_under_random_interleavings() {
    for case in 0..200u64 {
        let mut rng = Rng(0x41B9 ^ case.wrapping_mul(0x9E37_79B9));
        let capacity = (rng.next() % 17 + 1) as usize;
        let mut buf = RingBuffer::new(capacity);
        let mut pushes = 0u64;
        let mut drains = 0u64;
        for _ in 0..(rng.next() % 300) {
            match rng.next() % 10 {
                // Mostly pushes, occasionally a full drain.
                0 => {
                    drains += buf.len() as u64;
                    let drained = buf.drain();
                    assert!(drained.len() <= capacity, "case {case}");
                    assert_eq!(buf.len(), 0, "case {case}");
                    // Dropped survives a drain: it counts evictions,
                    // not occupancy.
                }
                _ => {
                    buf.push(pushes);
                    pushes += 1;
                }
            }
            assert!(buf.len() <= capacity, "case {case}");
            assert_eq!(
                pushes,
                buf.len() as u64 + buf.dropped() + drains,
                "push accounting broke (case {case}, capacity {capacity})"
            );
            assert_eq!(buf.capacity(), capacity, "case {case}");
            assert_eq!(buf.iter().count(), buf.len(), "case {case}");
        }
        // The survivors are always the most recent pushes, in order.
        let newest: Vec<u64> = buf.iter().copied().collect();
        assert!(newest.windows(2).all(|w| w[0] < w[1]), "case {case}");
        if let Some(&last) = newest.last() {
            assert_eq!(last, pushes - 1, "case {case}");
        }
    }
}

// ---- LineageRecorder: malformed feeds -------------------------------

fn upd(system: u16, proc: u16, seq: u32) -> UpdateId {
    UpdateId::pack(system, proc, seq)
}

#[test]
fn duplicate_lifecycle_stages_are_kept_verbatim() {
    // A faulty transport can apply the same update twice at a replica;
    // the recorder is a journal, not a deduplicator.
    let mut lin = LineageRecorder::new();
    let u = upd(0, 1, 7);
    lin.issued(u, 100);
    lin.applied(u, 0, 2, 250);
    lin.applied(u, 0, 2, 250);
    lin.issued(u, 400); // double issue of the same update id
    assert_eq!(lin.events_of(u).len(), 4);
    assert_eq!(
        lin.events_of(u)
            .iter()
            .filter(|e| e.stage == Stage::ReplicaApplied)
            .count(),
        2
    );
    // The re-issue overwrites the issue time and makes the update its
    // own program-order parent — pinned, however odd, so a change here
    // is a conscious one.
    assert_eq!(lin.issued_at(u), Some(400));
    assert_eq!(lin.parent(u), Some(u));
    let golden = "t=         100ns  S0.p1  hop 0  issued\n\
                  t=         250ns  S0.p2  hop 0  replica-applied\n\
                  t=         250ns  S0.p2  hop 0  replica-applied\n\
                  t=         400ns  S0.p1  hop 0  issued\n";
    assert_eq!(lin.lifecycle(u), golden);
}

#[test]
fn remote_apply_before_any_frame_keeps_hop_zero() {
    // `remote_applied` with no preceding `frame_sent`/`remote_written`:
    // the hop table never saw the destination system, so the event is
    // journaled at hop 0 and `hop()` stays unregistered there.
    let mut lin = LineageRecorder::new();
    let u = upd(0, 0, 1);
    lin.issued(u, 10);
    lin.applied(u, 1, 3, 20); // remote system, no frame ever sent
    assert_eq!(lin.hop(u, 0), Some(0));
    assert_eq!(lin.hop(u, 1), None);
    assert_eq!(lin.max_hop(u), 0);
    assert_eq!(lin.crossings(u), 0);
    let golden = "t=          10ns  S0.p0  hop 0  issued\n\
                  t=          20ns  S1.p3  hop 0  remote-applied\n";
    assert_eq!(lin.lifecycle(u), golden);
    // The out-of-shape remote apply still lands in the latency
    // derivations (hop bucket 0).
    assert_eq!(lin.hop_latencies().len(), 1);
}

#[test]
fn unknown_update_queries_are_empty_not_panics() {
    let mut lin = LineageRecorder::new();
    lin.issued(upd(0, 0, 1), 10);
    let ghost = upd(3, 9, 999);
    assert_eq!(lin.lifecycle(ghost), "");
    assert!(lin.events_of(ghost).is_empty());
    assert_eq!(lin.hop(ghost, 0), None);
    assert_eq!(lin.max_hop(ghost), 0);
    assert_eq!(lin.parent(ghost), None);
    assert_eq!(lin.issued_at(ghost), None);
    assert_eq!(lin.crossings(ghost), 0);
    assert_eq!(lin.systems_reached(ghost), Vec::new());
}

#[test]
fn orphan_stages_without_issue_are_journaled_but_invisible_to_updates() {
    // Stages for a never-issued update: kept in the journal (the feed
    // is the truth), absent from `updates()` and latency derivations
    // (they key off `issued_at`).
    let mut lin = LineageRecorder::new();
    let u = upd(0, 5, 42);
    lin.frame_sent(u, 0, 5, 1, 30);
    lin.applied(u, 1, 0, 60);
    assert_eq!(lin.events_of(u).len(), 2);
    assert!(lin.updates().is_empty());
    assert!(lin.hop_latencies().is_empty());
    assert_eq!(lin.crossings(u), 1);
}
