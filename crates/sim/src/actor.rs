//! The actor abstraction: protocol state machines driven by events.

use std::any::Any;
use std::fmt;
use std::time::Duration;

use cmi_obs::{LineageRecorder, MetricsRegistry, SpanId};
use cmi_types::SimTime;

use crate::engine::Engine;
use crate::rng::SplitMix64;

/// Dense identifier of an actor within one [`Sim`](crate::Sim).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub u32);

impl ActorId {
    /// Index of this actor as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// A protocol state machine hosted by the simulator.
///
/// Actors never share memory: all interaction happens through messages
/// sent over the channels registered in the
/// [`SimBuilder`](crate::SimBuilder) topology, which keeps the simulation
/// deterministic and mirrors the paper's message-passing MCS model.
///
/// The `as_any`/`as_any_mut` methods allow the harness to recover the
/// concrete actor type after a run (e.g. to extract a recorded history);
/// implementations are always the two one-liners shown in the crate-level
/// example.
pub trait Actor<M>: Any {
    /// Called once before any event is delivered, at virtual time zero.
    /// A typical implementation schedules the actor's first timer.
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        let _ = ctx;
    }

    /// Called when a message arrives on an incoming channel.
    fn on_message(&mut self, from: ActorId, msg: M, ctx: &mut Ctx<'_, M>);

    /// Called when a timer scheduled with [`Ctx::schedule`] fires.
    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, M>) {
        let _ = (token, ctx);
    }

    /// Upcast for post-run extraction of the concrete actor state.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for post-run extraction.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// The capabilities an actor can use while handling an event: sending
/// messages, scheduling timers, reading the clock and drawing randomness.
///
/// A `Ctx` is only valid for the duration of one callback.
pub struct Ctx<'a, M> {
    pub(crate) engine: &'a mut Engine<M>,
    pub(crate) me: ActorId,
}

impl<'a, M: fmt::Debug + Clone> Ctx<'a, M> {
    /// The id of the actor handling the current event.
    pub fn me(&self) -> ActorId {
        self.me
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.engine.now
    }

    /// Sends `msg` to `to` over the channel registered from this actor.
    ///
    /// Delivery is reliable and FIFO per channel; the delivery instant is
    /// derived from the channel's delay, jitter and availability schedule.
    ///
    /// # Panics
    ///
    /// Panics if no channel `self.me() → to` was registered — that is a
    /// topology bug in the harness, not a runtime condition.
    pub fn send(&mut self, to: ActorId, msg: M) {
        self.engine.send(self.me, to, msg);
    }

    /// Schedules `on_timer(token)` for this actor after `delay`.
    pub fn schedule(&mut self, delay: Duration, token: u64) {
        self.engine.schedule_timer(self.me, delay, token);
    }

    /// Deterministic per-actor random number generator.
    ///
    /// Each actor's RNG stream is derived from the world seed and the
    /// actor id, so adding an actor does not perturb the streams of the
    /// others.
    pub fn rng(&mut self) -> &mut SplitMix64 {
        &mut self.engine.actor_rngs[self.me.index()]
    }

    /// The run's metrics registry, for protocol-level counters and
    /// latency observations (`"protocol.writes_applied"`, ...).
    pub fn metrics(&mut self) -> &mut MetricsRegistry {
        self.engine.metrics_mut()
    }

    /// The run's causal lineage recorder, or `None` when lineage tracing
    /// is disabled (the default). Callers branch on the `Option` so a
    /// disabled run does no lineage work at all.
    pub fn lineage(&mut self) -> Option<&mut LineageRecorder> {
        self.engine.lineage_mut()
    }

    /// The run's streaming tap, or `None` when no tap is installed (the
    /// default). Protocol code feeds applied memory operations here;
    /// callers branch on the `Option` so an untapped run does no tap
    /// work at all.
    pub fn tap(&mut self) -> Option<&mut (dyn crate::tap::RunTap + 'static)> {
        self.engine.tap_mut()
    }

    /// `true` if a channel `self.me() → to` exists.
    pub fn has_channel_to(&self, to: ActorId) -> bool {
        self.engine.has_channel(self.me, to)
    }

    /// `true` when wall-clock span profiling is active (telemetry
    /// enabled). Actors read the clock only behind this check, so
    /// unprofiled runs pay one branch.
    pub fn profiling(&self) -> bool {
        self.engine.profiling()
    }

    /// Records one timed span of phase `id`; no-op when profiling is
    /// off. Callers pair this with [`profiling`](Ctx::profiling):
    /// `let t0 = ctx.profiling().then(Instant::now); ...;
    /// if let Some(t0) = t0 { ctx.record_span(id, elapsed) }`.
    pub fn record_span(&mut self, id: SpanId, ns: u64) {
        self.engine.record_span(id, ns);
    }

    /// Appends a custom annotation to the simulation trace (no-op when
    /// tracing is disabled). Used by protocol code to make X1-style
    /// protocol traces readable.
    pub fn note(&mut self, text: impl Into<String>) {
        self.engine.note(self.me, text.into());
    }

    /// `true` if any trace consumer (in-memory trace or sink) is
    /// attached. Protocol code checks this before building expensive
    /// note strings.
    pub fn tracing(&self) -> bool {
        self.engine.tracing()
    }

    /// Appends an annotation built lazily: `f` only runs when a trace
    /// consumer is attached, so untraced runs pay nothing.
    pub fn note_with(&mut self, f: impl FnOnce() -> String) {
        if self.engine.tracing() {
            self.engine.note(self.me, f());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actor_id_display_and_index() {
        assert_eq!(ActorId(3).to_string(), "a3");
        assert_eq!(ActorId(3).index(), 3);
    }
}
