//! Reliable FIFO channels with latency, jitter, availability schedules
//! and (optionally) injected faults.

use std::time::Duration;

use cmi_obs::{MetricId, MetricsRegistry};
use cmi_types::SimTime;

use crate::actor::ActorId;
use crate::rng::SplitMix64;

/// When a channel is able to start transmitting.
///
/// The paper's IS-protocols only require the inter-system channel to be
/// reliable and FIFO, not permanently available: *"If the channel is not
/// available during some period of time, the variable updates can be
/// queued up to be propagated at a later time. This makes the protocol
/// practical even with dial-up connections."* (Section 1.1). Availability
/// schedules model exactly that: a message handed to a down channel waits,
/// in order, until the next up period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Availability {
    /// The channel can always transmit.
    AlwaysUp,
    /// The channel is down before `at` and up forever after.
    UpFrom(SimTime),
    /// Periodic dial-up: within each window of `period`, the channel is
    /// up for the first `up` and down for the remainder.
    DutyCycle {
        /// Full cycle length.
        period: Duration,
        /// Up time at the start of each cycle.
        up: Duration,
    },
}

impl Availability {
    /// Earliest instant `>= t` at which transmission can start.
    ///
    /// Boundary semantics (pinned by tests): the up-window is half-open,
    /// `[cycle start, cycle start + up)` — a message handed to the
    /// channel exactly when the window closes (`phase == up`) waits for
    /// the next cycle, while one handed exactly at a cycle start
    /// (`phase == 0`) transmits immediately. An `up >= period` schedule
    /// is always up.
    ///
    /// # Example
    ///
    /// ```
    /// use cmi_sim::Availability;
    /// use cmi_types::SimTime;
    /// use std::time::Duration;
    ///
    /// let dialup = Availability::DutyCycle {
    ///     period: Duration::from_millis(100),
    ///     up: Duration::from_millis(10),
    /// };
    /// // Down at t = 50 ms; the next window opens at 100 ms.
    /// let t = SimTime::from_millis(50);
    /// assert_eq!(dialup.next_transmit(t), SimTime::from_millis(100));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if a [`Availability::DutyCycle`] has a zero period or an
    /// `up` window of zero (the channel would never transmit).
    pub fn next_transmit(self, t: SimTime) -> SimTime {
        match self {
            Availability::AlwaysUp => t,
            Availability::UpFrom(at) => t.max(at),
            Availability::DutyCycle { period, up } => {
                let period_ns = u64::try_from(period.as_nanos()).expect("period too large");
                let up_ns = u64::try_from(up.as_nanos()).expect("up too large");
                assert!(period_ns > 0, "DutyCycle period must be positive");
                assert!(up_ns > 0, "DutyCycle up window must be positive");
                let now = t.as_nanos();
                let phase = now % period_ns;
                if phase < up_ns {
                    t
                } else {
                    SimTime::from_nanos(now - phase + period_ns)
                }
            }
        }
    }

    /// `true` if the channel can transmit at instant `t`.
    pub fn is_up(self, t: SimTime) -> bool {
        self.next_transmit(t) == t
    }
}

/// A scripted fault applied to one specific message of a channel.
///
/// Scripts make adversarial tests deterministic without probabilities:
/// "drop exactly the third message" is expressible directly. Message
/// indices count from zero in send order on that one channel direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The message vanishes.
    Drop,
    /// The message is delivered twice.
    Duplicate,
    /// The payload is damaged (see [`crate::SimBuilder::set_corrupter`]).
    Corrupt,
    /// The message is held back for an extra delay, bypassing the FIFO
    /// clamp so later messages can overtake it.
    Delay(Duration),
}

/// Seeded fault injection for one channel direction.
///
/// Every decision draws from the channel's own [`SplitMix64`] stream,
/// derived from the world seed and the channel's endpoints — runs are
/// deterministic and replayable (same seed and spec ⇒ same fault
/// history), and enabling faults on one channel never perturbs another.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    /// Per-message probability of silent loss.
    pub drop_prob: f64,
    /// Per-message probability of a duplicate delivery.
    pub duplicate_prob: f64,
    /// Per-message probability of reordering: the message takes an extra
    /// uniform delay in `[0, reorder_window)` that bypasses the FIFO
    /// clamp, letting later messages overtake it.
    pub reorder_prob: f64,
    /// Bound of the extra reordering delay (exclusive).
    pub reorder_window: Duration,
    /// Per-message probability of payload corruption.
    pub corrupt_prob: f64,
    /// Scripted faults: `(message index, action)` pairs applied on top of
    /// the probabilistic faults, for deterministic adversarial tests.
    pub script: Vec<(u64, FaultAction)>,
}

impl FaultSpec {
    /// No faults (the default).
    pub fn none() -> Self {
        FaultSpec::default()
    }

    fn check_prob(p: f64, what: &str) {
        assert!(
            (0.0..=1.0).contains(&p),
            "{what} probability must be in [0, 1], got {p}"
        );
    }

    /// Sets the drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        Self::check_prob(p, "drop");
        self.drop_prob = p;
        self
    }

    /// Sets the duplication probability.
    pub fn with_duplication(mut self, p: f64) -> Self {
        Self::check_prob(p, "duplicate");
        self.duplicate_prob = p;
        self
    }

    /// Sets the reordering probability and the bounded extra-delay
    /// window.
    pub fn with_reordering(mut self, p: f64, window: Duration) -> Self {
        Self::check_prob(p, "reorder");
        assert!(
            p == 0.0 || !window.is_zero(),
            "reordering needs a positive window"
        );
        self.reorder_prob = p;
        self.reorder_window = window;
        self
    }

    /// Sets the corruption probability.
    pub fn with_corruption(mut self, p: f64) -> Self {
        Self::check_prob(p, "corrupt");
        self.corrupt_prob = p;
        self
    }

    /// Appends a scripted fault on message `nth` (zero-based send index).
    pub fn with_scripted(mut self, nth: u64, action: FaultAction) -> Self {
        self.script.push((nth, action));
        self
    }

    /// `true` if this spec can ever inject a fault.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.duplicate_prob > 0.0
            || self.reorder_prob > 0.0
            || self.corrupt_prob > 0.0
            || !self.script.is_empty()
    }
}

/// Static description of one unidirectional channel.
///
/// Delivery time of a message sent at `t` is
/// `max(next_transmit(t) + delay + jitter, previous delivery)` — the
/// clamp preserves FIFO order under jitter, matching the paper's reliable
/// FIFO channel assumption. Setting `fifo: false` removes the clamp and
/// lets jitter reorder messages; the paper's IS-protocols *require* FIFO
/// links, and the ablation experiment X7 uses a non-FIFO link to show
/// what breaks without them. [`FaultSpec`] layers loss, duplication,
/// reordering and corruption on top, for the reliable-transport sublayer
/// in `cmi-core` to repair.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelSpec {
    /// Base propagation delay.
    pub delay: Duration,
    /// Maximum extra uniform random delay (exclusive); zero disables
    /// jitter and makes the channel fully deterministic.
    pub jitter: Duration,
    /// Availability schedule.
    pub availability: Availability,
    /// Whether delivery order is clamped to send order (default `true`).
    pub fifo: bool,
    /// Injected faults ([`FaultSpec::none`] for the paper's reliable
    /// channel).
    pub faults: FaultSpec,
}

impl ChannelSpec {
    /// A always-up channel with fixed `delay` and no jitter.
    pub fn fixed(delay: Duration) -> Self {
        ChannelSpec {
            delay,
            jitter: Duration::ZERO,
            availability: Availability::AlwaysUp,
            fifo: true,
            faults: FaultSpec::none(),
        }
    }

    /// A always-up channel with `delay` plus uniform jitter in
    /// `[0, jitter)`.
    pub fn jittered(delay: Duration, jitter: Duration) -> Self {
        ChannelSpec {
            delay,
            jitter,
            availability: Availability::AlwaysUp,
            fifo: true,
            faults: FaultSpec::none(),
        }
    }

    /// A deliberately order-violating channel: `delay` plus jitter with
    /// **no** FIFO clamp. Violates the paper's channel assumption; used
    /// by ablation experiments only.
    pub fn reordering(delay: Duration, jitter: Duration) -> Self {
        ChannelSpec {
            delay,
            jitter,
            availability: Availability::AlwaysUp,
            fifo: false,
            faults: FaultSpec::none(),
        }
    }

    /// Replaces the availability schedule.
    pub fn with_availability(mut self, availability: Availability) -> Self {
        self.availability = availability;
        self
    }

    /// Replaces the fault spec.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }
}

/// Up to two delivery instants, stored inline so the per-send hot path
/// never allocates (a channel delivers a message zero, one or — when
/// duplicated — two times).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Deliveries {
    times: [SimTime; 2],
    len: u8,
}

impl Deliveries {
    pub(crate) fn none() -> Self {
        Deliveries {
            times: [SimTime::ZERO; 2],
            len: 0,
        }
    }

    pub(crate) fn one(t: SimTime) -> Self {
        Deliveries {
            times: [t, SimTime::ZERO],
            len: 1,
        }
    }

    pub(crate) fn two(first: SimTime, second: SimTime) -> Self {
        Deliveries {
            times: [first, second],
            len: 2,
        }
    }

    pub(crate) fn as_slice(&self) -> &[SimTime] {
        &self.times[..usize::from(self.len)]
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// What the channel decided to do with one message.
///
/// Produced by [`ChannelState::plan`]; consumed by the engine, which
/// pushes one delivery event per entry of `deliveries` and bumps the
/// per-channel fault counters for every `true` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SendPlan {
    /// Delivery instants (empty = dropped, two entries = duplicated).
    pub(crate) deliveries: Deliveries,
    /// The message was silently dropped.
    pub(crate) dropped: bool,
    /// The message is delivered twice.
    pub(crate) duplicated: bool,
    /// The message took an extra FIFO-bypassing delay.
    pub(crate) reordered: bool,
    /// The payload is damaged; `corrupt_seed` seeds the corrupter.
    pub(crate) corrupted: bool,
    /// Seed for the payload corrupter (drawn from the channel stream so
    /// the damage itself replays deterministically).
    pub(crate) corrupt_seed: u64,
}

/// The four per-channel fault counters, pre-resolved to [`MetricId`]s at
/// build time so the per-event path never formats or hashes a name.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ChannelCounters {
    pub(crate) dropped: MetricId,
    pub(crate) duplicated: MetricId,
    pub(crate) reordered: MetricId,
    pub(crate) corrupted: MetricId,
    pub(crate) partitioned: MetricId,
}

impl ChannelCounters {
    /// Interns the channel's counter names (the only place the
    /// `channel.{from}->{to}.*` strings are ever built).
    pub(crate) fn resolve(metrics: &mut MetricsRegistry, from: ActorId, to: ActorId) -> Self {
        ChannelCounters {
            dropped: metrics.key(&format!("channel.{from}->{to}.dropped")),
            duplicated: metrics.key(&format!("channel.{from}->{to}.duplicated")),
            reordered: metrics.key(&format!("channel.{from}->{to}.reordered")),
            corrupted: metrics.key(&format!("channel.{from}->{to}.corrupted")),
            partitioned: metrics.key(&format!("channel.{from}->{to}.partitioned")),
        }
    }
}

/// Mutable per-channel state tracked by the engine.
#[derive(Debug, Clone)]
pub(crate) struct ChannelState {
    pub(crate) spec: ChannelSpec,
    /// Delivery instant of the most recently scheduled message; later
    /// messages are clamped to at least this, preserving FIFO order.
    pub(crate) last_delivery: SimTime,
    /// The channel's own fault stream (reseeded per channel by the
    /// builder; untouched unless the fault spec is active).
    pub(crate) fault_rng: SplitMix64,
    /// Messages handed to this channel so far (drives fault scripts).
    pub(crate) msg_index: u64,
    /// Pre-resolved fault-counter ids (`None` until the builder resolves
    /// them against the world's registry).
    pub(crate) counters: Option<ChannelCounters>,
    /// Partitioned: every send is discarded (and counted) until healed.
    /// In-flight deliveries are unaffected — a partition severs the link
    /// at the send instant, it does not reach into the queue.
    pub(crate) blocked: bool,
}

impl ChannelState {
    pub(crate) fn new(spec: ChannelSpec) -> Self {
        ChannelState {
            spec,
            last_delivery: SimTime::ZERO,
            fault_rng: SplitMix64::seed_from_u64(0),
            msg_index: 0,
            counters: None,
            blocked: false,
        }
    }

    /// Computes (and records) the delivery instant for a message handed to
    /// the channel at `now` with sampled `jitter`.
    pub(crate) fn schedule(&mut self, now: SimTime, jitter: Duration) -> SimTime {
        let start = self.spec.availability.next_transmit(now);
        let candidate = start + self.spec.delay + jitter;
        if !self.spec.fifo {
            return candidate;
        }
        let delivery = candidate.max(self.last_delivery);
        self.last_delivery = delivery;
        delivery
    }

    /// Decides the fate of one message: delivery instants plus which
    /// faults were injected. The fast path (inactive fault spec) draws
    /// nothing from the fault stream, so fault-free channels behave
    /// bit-identically to a build without fault support.
    pub(crate) fn plan(&mut self, now: SimTime, jitter: Duration) -> SendPlan {
        if !self.spec.faults.is_active() {
            return SendPlan {
                deliveries: Deliveries::one(self.schedule(now, jitter)),
                dropped: false,
                duplicated: false,
                reordered: false,
                corrupted: false,
                corrupt_seed: 0,
            };
        }
        let idx = self.msg_index;
        self.msg_index += 1;
        // Probabilistic decisions, in a fixed draw order. Borrow the
        // spec's fault fields disjointly from the RNG (no clone of the
        // fault script on the per-message path).
        let (mut dropped, mut duplicated, mut reorder_extra, mut corrupted) = {
            let faults = &self.spec.faults;
            let rng = &mut self.fault_rng;
            let dropped = faults.drop_prob > 0.0 && rng.gen_bool(faults.drop_prob);
            let duplicated = faults.duplicate_prob > 0.0 && rng.gen_bool(faults.duplicate_prob);
            let mut reorder_extra = Duration::ZERO;
            if faults.reorder_prob > 0.0 && rng.gen_bool(faults.reorder_prob) {
                let max = u64::try_from(faults.reorder_window.as_nanos())
                    .expect("reorder window too large");
                reorder_extra = Duration::from_nanos(rng.gen_range(1..max.max(2)));
            }
            let corrupted = faults.corrupt_prob > 0.0 && rng.gen_bool(faults.corrupt_prob);
            (dropped, duplicated, reorder_extra, corrupted)
        };
        // Scripted overrides for this message index.
        for &(nth, action) in &self.spec.faults.script {
            if nth != idx {
                continue;
            }
            match action {
                FaultAction::Drop => dropped = true,
                FaultAction::Duplicate => duplicated = true,
                FaultAction::Corrupt => corrupted = true,
                FaultAction::Delay(d) => reorder_extra = reorder_extra.max(d),
            }
        }
        if dropped {
            return SendPlan {
                deliveries: Deliveries::none(),
                dropped: true,
                duplicated: false,
                reordered: false,
                corrupted: false,
                corrupt_seed: 0,
            };
        }
        let reordered = !reorder_extra.is_zero();
        // A reordered delivery bypasses the FIFO clamp (the extra delay
        // is added after scheduling and not recorded in `last_delivery`),
        // so subsequent messages can overtake it.
        let base = self.schedule(now, jitter);
        let deliveries = if duplicated {
            let second = self.schedule(now, jitter);
            Deliveries::two(base + reorder_extra, second)
        } else {
            Deliveries::one(base + reorder_extra)
        };
        let corrupt_seed = if corrupted {
            self.fault_rng.next_u64()
        } else {
            0
        };
        SendPlan {
            deliveries,
            dropped: false,
            duplicated,
            reordered,
            corrupted,
            corrupt_seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn at_ms(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    #[test]
    fn always_up_transmits_immediately() {
        assert_eq!(Availability::AlwaysUp.next_transmit(at_ms(5)), at_ms(5));
        assert!(Availability::AlwaysUp.is_up(at_ms(5)));
    }

    #[test]
    fn up_from_defers_until_ready() {
        let a = Availability::UpFrom(at_ms(10));
        assert_eq!(a.next_transmit(at_ms(3)), at_ms(10));
        assert_eq!(a.next_transmit(at_ms(12)), at_ms(12));
        assert!(!a.is_up(at_ms(3)));
        assert!(a.is_up(at_ms(10)));
    }

    #[test]
    fn duty_cycle_transmits_only_in_up_window() {
        // Up for 2ms at the start of every 10ms.
        let a = Availability::DutyCycle {
            period: ms(10),
            up: ms(2),
        };
        assert_eq!(a.next_transmit(at_ms(0)), at_ms(0));
        assert_eq!(a.next_transmit(at_ms(1)), at_ms(1));
        assert_eq!(a.next_transmit(at_ms(2)), at_ms(10));
        assert_eq!(a.next_transmit(at_ms(9)), at_ms(10));
        assert_eq!(a.next_transmit(at_ms(10)), at_ms(10));
        assert_eq!(a.next_transmit(at_ms(17)), at_ms(20));
    }

    #[test]
    fn duty_cycle_window_boundaries_are_half_open() {
        let a = Availability::DutyCycle {
            period: ms(10),
            up: ms(2),
        };
        // Exactly when the window closes: the message waits a full cycle.
        assert!(!a.is_up(at_ms(2)));
        assert_eq!(a.next_transmit(at_ms(2)), at_ms(10));
        // One nanosecond before the close: still in the window.
        let just_inside = SimTime::from_nanos(at_ms(2).as_nanos() - 1);
        assert!(a.is_up(just_inside));
        // Exactly at a cycle start: transmits immediately.
        assert!(a.is_up(at_ms(20)));
        assert_eq!(a.next_transmit(at_ms(20)), at_ms(20));
        // Last instant of a cycle: next cycle start.
        let cycle_end = SimTime::from_nanos(at_ms(10).as_nanos() - 1);
        assert_eq!(a.next_transmit(cycle_end), at_ms(10));
    }

    #[test]
    fn duty_cycle_with_up_at_least_period_is_always_up() {
        for up in [10u64, 15] {
            let a = Availability::DutyCycle {
                period: ms(10),
                up: ms(up),
            };
            for t in [0u64, 3, 9, 10, 11, 999] {
                assert!(a.is_up(at_ms(t)), "up={up} t={t}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "up window must be positive")]
    fn zero_up_window_is_rejected() {
        let a = Availability::DutyCycle {
            period: ms(10),
            up: Duration::ZERO,
        };
        a.next_transmit(SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_is_rejected() {
        let a = Availability::DutyCycle {
            period: Duration::ZERO,
            up: ms(1),
        };
        a.next_transmit(SimTime::ZERO);
    }

    #[test]
    fn channel_state_preserves_fifo_under_jitter() {
        let mut c = ChannelState::new(ChannelSpec::jittered(ms(10), ms(5)));
        // First message: large jitter.
        let d1 = c.schedule(at_ms(0), ms(4));
        assert_eq!(d1, at_ms(14));
        // Second message sent later with smaller jitter would arrive at
        // 12ms < 14ms; the clamp delays it to 14ms.
        let d2 = c.schedule(at_ms(1), ms(1));
        assert_eq!(d2, at_ms(14));
        // Third message is past the clamp.
        let d3 = c.schedule(at_ms(10), ms(0));
        assert_eq!(d3, at_ms(20));
    }

    #[test]
    fn down_channel_queues_messages_in_order() {
        let spec = ChannelSpec::fixed(ms(1)).with_availability(Availability::UpFrom(at_ms(100)));
        let mut c = ChannelState::new(spec);
        let d1 = c.schedule(at_ms(3), Duration::ZERO);
        let d2 = c.schedule(at_ms(5), Duration::ZERO);
        assert_eq!(d1, at_ms(101));
        assert_eq!(d2, at_ms(101)); // same instant; event seq keeps order
        assert!(d2 >= d1);
    }

    #[test]
    fn spec_constructors_cover_common_cases() {
        let f = ChannelSpec::fixed(ms(2));
        assert_eq!(f.jitter, Duration::ZERO);
        assert_eq!(f.availability, Availability::AlwaysUp);
        assert!(f.fifo);
        assert!(!f.faults.is_active());
        let j = ChannelSpec::jittered(ms(2), ms(1));
        assert_eq!(j.jitter, ms(1));
        assert!(!ChannelSpec::reordering(ms(2), ms(1)).fifo);
    }

    #[test]
    fn reordering_channel_skips_the_fifo_clamp() {
        let mut c = ChannelState::new(ChannelSpec::reordering(ms(10), ms(5)));
        let d1 = c.schedule(at_ms(0), ms(4));
        let d2 = c.schedule(at_ms(1), ms(1));
        assert_eq!(d1, at_ms(14));
        assert_eq!(d2, at_ms(12), "second message overtakes the first");
    }

    #[test]
    fn inactive_faults_leave_the_fault_stream_untouched() {
        let mut c = ChannelState::new(ChannelSpec::fixed(ms(1)));
        let before = c.fault_rng.clone();
        let plan = c.plan(at_ms(0), Duration::ZERO);
        assert_eq!(plan.deliveries.as_slice(), &[at_ms(1)]);
        assert!(!plan.dropped && !plan.duplicated && !plan.reordered && !plan.corrupted);
        assert_eq!(c.fault_rng, before, "no draws on the fast path");
        assert_eq!(c.msg_index, 0, "script index only advances under faults");
    }

    #[test]
    fn certain_drop_loses_every_message() {
        let spec = ChannelSpec::fixed(ms(1)).with_faults(FaultSpec::none().with_drop(1.0));
        let mut c = ChannelState::new(spec);
        for t in 0..5 {
            let plan = c.plan(at_ms(t), Duration::ZERO);
            assert!(plan.dropped);
            assert!(plan.deliveries.is_empty());
        }
    }

    #[test]
    fn certain_duplication_schedules_two_deliveries() {
        let spec = ChannelSpec::fixed(ms(1)).with_faults(FaultSpec::none().with_duplication(1.0));
        let mut c = ChannelState::new(spec);
        let plan = c.plan(at_ms(0), Duration::ZERO);
        assert!(plan.duplicated);
        assert_eq!(plan.deliveries.as_slice().len(), 2);
    }

    #[test]
    fn scripted_faults_hit_exactly_their_message() {
        let spec = ChannelSpec::fixed(ms(1)).with_faults(
            FaultSpec::none()
                .with_scripted(1, FaultAction::Drop)
                .with_scripted(2, FaultAction::Corrupt),
        );
        let mut c = ChannelState::new(spec);
        let p0 = c.plan(at_ms(0), Duration::ZERO);
        let p1 = c.plan(at_ms(0), Duration::ZERO);
        let p2 = c.plan(at_ms(0), Duration::ZERO);
        assert!(!p0.dropped && !p0.corrupted);
        assert!(p1.dropped);
        assert!(!p2.dropped && p2.corrupted);
    }

    #[test]
    fn scripted_delay_bypasses_the_fifo_clamp() {
        let spec = ChannelSpec::fixed(ms(1))
            .with_faults(FaultSpec::none().with_scripted(0, FaultAction::Delay(ms(50))));
        let mut c = ChannelState::new(spec);
        let p0 = c.plan(at_ms(0), Duration::ZERO);
        let p1 = c.plan(at_ms(0), Duration::ZERO);
        assert!(p0.reordered);
        assert_eq!(p0.deliveries.as_slice(), &[at_ms(51)]);
        assert_eq!(
            p1.deliveries.as_slice(),
            &[at_ms(1)],
            "second message overtakes"
        );
    }

    #[test]
    fn fault_decisions_replay_identically() {
        let spec = ChannelSpec::fixed(ms(1)).with_faults(
            FaultSpec::none()
                .with_drop(0.3)
                .with_duplication(0.2)
                .with_reordering(0.2, ms(20))
                .with_corruption(0.1),
        );
        let mut a = ChannelState::new(spec.clone());
        let mut b = ChannelState::new(spec);
        a.fault_rng = SplitMix64::seed_from_u64(42);
        b.fault_rng = SplitMix64::seed_from_u64(42);
        for t in 0..200 {
            assert_eq!(
                a.plan(at_ms(t), Duration::ZERO),
                b.plan(at_ms(t), Duration::ZERO)
            );
        }
    }

    #[test]
    fn probability_out_of_range_panics() {
        let result = std::panic::catch_unwind(|| FaultSpec::none().with_drop(1.5));
        assert!(result.is_err());
    }

    #[test]
    fn deliveries_inline_storage_round_trips() {
        assert!(Deliveries::none().is_empty());
        assert_eq!(Deliveries::one(at_ms(3)).as_slice(), &[at_ms(3)]);
        let two = Deliveries::two(at_ms(3), at_ms(5));
        assert_eq!(two.as_slice(), &[at_ms(3), at_ms(5)]);
    }
}
