//! Reliable FIFO channels with latency, jitter and availability schedules.

use std::time::Duration;

use cmi_types::SimTime;

/// When a channel is able to start transmitting.
///
/// The paper's IS-protocols only require the inter-system channel to be
/// reliable and FIFO, not permanently available: *"If the channel is not
/// available during some period of time, the variable updates can be
/// queued up to be propagated at a later time. This makes the protocol
/// practical even with dial-up connections."* (Section 1.1). Availability
/// schedules model exactly that: a message handed to a down channel waits,
/// in order, until the next up period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Availability {
    /// The channel can always transmit.
    AlwaysUp,
    /// The channel is down before `at` and up forever after.
    UpFrom(SimTime),
    /// Periodic dial-up: within each window of `period`, the channel is
    /// up for the first `up` and down for the remainder.
    DutyCycle {
        /// Full cycle length.
        period: Duration,
        /// Up time at the start of each cycle.
        up: Duration,
    },
}

impl Availability {
    /// Earliest instant `>= t` at which transmission can start.
    ///
    /// # Example
    ///
    /// ```
    /// use cmi_sim::Availability;
    /// use cmi_types::SimTime;
    /// use std::time::Duration;
    ///
    /// let dialup = Availability::DutyCycle {
    ///     period: Duration::from_millis(100),
    ///     up: Duration::from_millis(10),
    /// };
    /// // Down at t = 50 ms; the next window opens at 100 ms.
    /// let t = SimTime::from_millis(50);
    /// assert_eq!(dialup.next_transmit(t), SimTime::from_millis(100));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if a [`Availability::DutyCycle`] has a zero period or an
    /// `up` window of zero (the channel would never transmit).
    pub fn next_transmit(self, t: SimTime) -> SimTime {
        match self {
            Availability::AlwaysUp => t,
            Availability::UpFrom(at) => t.max(at),
            Availability::DutyCycle { period, up } => {
                let period_ns = u64::try_from(period.as_nanos()).expect("period too large");
                let up_ns = u64::try_from(up.as_nanos()).expect("up too large");
                assert!(period_ns > 0, "DutyCycle period must be positive");
                assert!(up_ns > 0, "DutyCycle up window must be positive");
                let now = t.as_nanos();
                let phase = now % period_ns;
                if phase < up_ns {
                    t
                } else {
                    SimTime::from_nanos(now - phase + period_ns)
                }
            }
        }
    }

    /// `true` if the channel can transmit at instant `t`.
    pub fn is_up(self, t: SimTime) -> bool {
        self.next_transmit(t) == t
    }
}

/// Static description of one unidirectional channel.
///
/// Delivery time of a message sent at `t` is
/// `max(next_transmit(t) + delay + jitter, previous delivery)` — the
/// clamp preserves FIFO order under jitter, matching the paper's reliable
/// FIFO channel assumption. Setting `fifo: false` removes the clamp and
/// lets jitter reorder messages; the paper's IS-protocols *require* FIFO
/// links, and the ablation experiment X7 uses a non-FIFO link to show
/// what breaks without them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelSpec {
    /// Base propagation delay.
    pub delay: Duration,
    /// Maximum extra uniform random delay (exclusive); zero disables
    /// jitter and makes the channel fully deterministic.
    pub jitter: Duration,
    /// Availability schedule.
    pub availability: Availability,
    /// Whether delivery order is clamped to send order (default `true`).
    pub fifo: bool,
    /// Deliver every message **twice** (default `false`). Violates the
    /// paper's exactly-once reliability assumption; used by ablation
    /// experiments only.
    pub duplicate: bool,
}

impl ChannelSpec {
    /// A always-up channel with fixed `delay` and no jitter.
    pub fn fixed(delay: Duration) -> Self {
        ChannelSpec {
            delay,
            jitter: Duration::ZERO,
            availability: Availability::AlwaysUp,
            fifo: true,
            duplicate: false,
        }
    }

    /// A always-up channel with `delay` plus uniform jitter in
    /// `[0, jitter)`.
    pub fn jittered(delay: Duration, jitter: Duration) -> Self {
        ChannelSpec {
            delay,
            jitter,
            availability: Availability::AlwaysUp,
            fifo: true,
            duplicate: false,
        }
    }

    /// A deliberately order-violating channel: `delay` plus jitter with
    /// **no** FIFO clamp. Violates the paper's channel assumption; used
    /// by ablation experiments only.
    pub fn reordering(delay: Duration, jitter: Duration) -> Self {
        ChannelSpec {
            delay,
            jitter,
            availability: Availability::AlwaysUp,
            fifo: false,
            duplicate: false,
        }
    }

    /// Replaces the availability schedule.
    pub fn with_availability(mut self, availability: Availability) -> Self {
        self.availability = availability;
        self
    }

    /// Makes the channel deliver every message twice (ablation of the
    /// paper's exactly-once reliability assumption).
    pub fn duplicating(mut self) -> Self {
        self.duplicate = true;
        self
    }
}

/// Mutable per-channel state tracked by the engine.
#[derive(Debug, Clone)]
pub(crate) struct ChannelState {
    pub(crate) spec: ChannelSpec,
    /// Delivery instant of the most recently scheduled message; later
    /// messages are clamped to at least this, preserving FIFO order.
    pub(crate) last_delivery: SimTime,
}

impl ChannelState {
    pub(crate) fn new(spec: ChannelSpec) -> Self {
        ChannelState {
            spec,
            last_delivery: SimTime::ZERO,
        }
    }

    /// Computes (and records) the delivery instant for a message handed to
    /// the channel at `now` with sampled `jitter`.
    pub(crate) fn schedule(&mut self, now: SimTime, jitter: Duration) -> SimTime {
        let start = self.spec.availability.next_transmit(now);
        let candidate = start + self.spec.delay + jitter;
        if !self.spec.fifo {
            return candidate;
        }
        let delivery = candidate.max(self.last_delivery);
        self.last_delivery = delivery;
        delivery
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn at_ms(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    #[test]
    fn always_up_transmits_immediately() {
        assert_eq!(Availability::AlwaysUp.next_transmit(at_ms(5)), at_ms(5));
        assert!(Availability::AlwaysUp.is_up(at_ms(5)));
    }

    #[test]
    fn up_from_defers_until_ready() {
        let a = Availability::UpFrom(at_ms(10));
        assert_eq!(a.next_transmit(at_ms(3)), at_ms(10));
        assert_eq!(a.next_transmit(at_ms(12)), at_ms(12));
        assert!(!a.is_up(at_ms(3)));
        assert!(a.is_up(at_ms(10)));
    }

    #[test]
    fn duty_cycle_transmits_only_in_up_window() {
        // Up for 2ms at the start of every 10ms.
        let a = Availability::DutyCycle {
            period: ms(10),
            up: ms(2),
        };
        assert_eq!(a.next_transmit(at_ms(0)), at_ms(0));
        assert_eq!(a.next_transmit(at_ms(1)), at_ms(1));
        assert_eq!(a.next_transmit(at_ms(2)), at_ms(10));
        assert_eq!(a.next_transmit(at_ms(9)), at_ms(10));
        assert_eq!(a.next_transmit(at_ms(10)), at_ms(10));
        assert_eq!(a.next_transmit(at_ms(17)), at_ms(20));
    }

    #[test]
    #[should_panic(expected = "up window must be positive")]
    fn zero_up_window_is_rejected() {
        let a = Availability::DutyCycle {
            period: ms(10),
            up: Duration::ZERO,
        };
        a.next_transmit(SimTime::ZERO);
    }

    #[test]
    fn channel_state_preserves_fifo_under_jitter() {
        let mut c = ChannelState::new(ChannelSpec::jittered(ms(10), ms(5)));
        // First message: large jitter.
        let d1 = c.schedule(at_ms(0), ms(4));
        assert_eq!(d1, at_ms(14));
        // Second message sent later with smaller jitter would arrive at
        // 12ms < 14ms; the clamp delays it to 14ms.
        let d2 = c.schedule(at_ms(1), ms(1));
        assert_eq!(d2, at_ms(14));
        // Third message is past the clamp.
        let d3 = c.schedule(at_ms(10), ms(0));
        assert_eq!(d3, at_ms(20));
    }

    #[test]
    fn down_channel_queues_messages_in_order() {
        let spec = ChannelSpec::fixed(ms(1)).with_availability(Availability::UpFrom(at_ms(100)));
        let mut c = ChannelState::new(spec);
        let d1 = c.schedule(at_ms(3), Duration::ZERO);
        let d2 = c.schedule(at_ms(5), Duration::ZERO);
        assert_eq!(d1, at_ms(101));
        assert_eq!(d2, at_ms(101)); // same instant; event seq keeps order
        assert!(d2 >= d1);
    }

    #[test]
    fn spec_constructors_cover_common_cases() {
        let f = ChannelSpec::fixed(ms(2));
        assert_eq!(f.jitter, Duration::ZERO);
        assert_eq!(f.availability, Availability::AlwaysUp);
        assert!(f.fifo);
        let j = ChannelSpec::jittered(ms(2), ms(1));
        assert_eq!(j.jitter, ms(1));
        assert!(!ChannelSpec::reordering(ms(2), ms(1)).fifo);
    }

    #[test]
    fn reordering_channel_skips_the_fifo_clamp() {
        let mut c = ChannelState::new(ChannelSpec::reordering(ms(10), ms(5)));
        let d1 = c.schedule(at_ms(0), ms(4));
        let d2 = c.schedule(at_ms(1), ms(1));
        assert_eq!(d1, at_ms(14));
        assert_eq!(d2, at_ms(12), "second message overtakes the first");
    }
}
