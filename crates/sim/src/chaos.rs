//! Deterministic chaos orchestration: compile a seeded schedule of
//! composed fault events — partition, heal, crash, recover, detach,
//! attach — against the virtual clock.
//!
//! The compiler is pure and world-agnostic: it knows only abstract index
//! spaces (inter-system links, IS-process slots, churnable systems) and
//! turns a [`ChaosSpec`] plus a seed into a time-sorted event list. The
//! embedding layer (cmi-core's chaos runner) maps the indices onto real
//! links and actors and applies each event between bounded `Sim::run`
//! segments. Because every mutation lands at a fixed virtual instant and
//! the compiler draws from its own derived RNG streams (one per event
//! category), any chaos run replays byte-identically from its seed, and
//! a run whose spec is empty is indistinguishable from one with no chaos
//! support at all.
//!
//! Windows drawn for the same target never overlap: later draws that
//! would overlap an earlier window on that target are discarded (a
//! deterministic pruning, not an error), so `Partition`/`Heal`,
//! `Crash`/`Recover` and `Detach`/`Attach` always alternate per target.
//! At equal instants, closing events sort before opening ones.

use std::fmt;
use std::time::Duration;

use cmi_types::SimTime;

use crate::rng::{derive_rng, SplitMix64};

/// One chaos event, applied at a fixed virtual instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEventKind {
    /// Sever both directions of inter-system link `link` atomically.
    Partition {
        /// Index into the world's inter-system link list.
        link: usize,
    },
    /// Restore both directions of inter-system link `link`.
    Heal {
        /// Index into the world's inter-system link list.
        link: usize,
    },
    /// Crash the IS-process in slot `isp`.
    Crash {
        /// Index into the world's IS-process list.
        isp: usize,
    },
    /// Recover the IS-process in slot `isp` (triggers replica resync).
    Recover {
        /// Index into the world's IS-process list.
        isp: usize,
    },
    /// Detach system `system` from the interconnection: its IS-processes
    /// stop propagating, in-flight frames are abandoned, and the
    /// membership epoch of every incident link advances so stale frames
    /// are rejected.
    Detach {
        /// Index into the world's system list.
        system: usize,
    },
    /// Re-attach system `system`: membership epochs advance again and
    /// both ends of every incident link resync (snapshot push + live
    /// propagation).
    Attach {
        /// Index into the world's system list.
        system: usize,
    },
}

impl ChaosEventKind {
    /// `true` for events that end a fault window (`Heal`, `Recover`,
    /// `Attach`); these sort before opening events at equal instants so
    /// adjacent windows on one target never momentarily overlap.
    pub fn is_closing(&self) -> bool {
        matches!(
            self,
            ChaosEventKind::Heal { .. }
                | ChaosEventKind::Recover { .. }
                | ChaosEventKind::Attach { .. }
        )
    }

    /// (category, target) sort key for deterministic tie-breaks.
    fn key(&self) -> (u8, usize) {
        match *self {
            ChaosEventKind::Partition { link } => (0, link),
            ChaosEventKind::Heal { link } => (0, link),
            ChaosEventKind::Crash { isp } => (1, isp),
            ChaosEventKind::Recover { isp } => (1, isp),
            ChaosEventKind::Detach { system } => (2, system),
            ChaosEventKind::Attach { system } => (2, system),
        }
    }
}

impl fmt::Display for ChaosEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosEventKind::Partition { link } => write!(f, "partition link {link}"),
            ChaosEventKind::Heal { link } => write!(f, "heal link {link}"),
            ChaosEventKind::Crash { isp } => write!(f, "crash isp {isp}"),
            ChaosEventKind::Recover { isp } => write!(f, "recover isp {isp}"),
            ChaosEventKind::Detach { system } => write!(f, "detach system {system}"),
            ChaosEventKind::Attach { system } => write!(f, "attach system {system}"),
        }
    }
}

/// A [`ChaosEventKind`] bound to its virtual instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosEvent {
    /// When the event is applied.
    pub at: SimTime,
    /// What happens.
    pub kind: ChaosEventKind,
}

impl fmt::Display for ChaosEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}ms {}", self.at.as_nanos() / 1_000_000, self.kind)
    }
}

/// Rates and durations of a chaos schedule. Counts are *attempts*: a
/// window that would overlap an earlier window on the same target is
/// pruned, so the compiled schedule may carry fewer windows than asked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Window starts are drawn uniformly from `[0, horizon)`.
    pub horizon: Duration,
    /// Partition windows to attempt.
    pub partitions: u32,
    /// Shortest partition duration.
    pub partition_min: Duration,
    /// Longest partition duration (inclusive bound of the draw).
    pub partition_max: Duration,
    /// Crash windows to attempt.
    pub crashes: u32,
    /// Shortest crash outage.
    pub crash_min: Duration,
    /// Longest crash outage.
    pub crash_max: Duration,
    /// Detach→attach churn cycles to attempt.
    pub churns: u32,
    /// Shortest detachment.
    pub detach_min: Duration,
    /// Longest detachment.
    pub detach_max: Duration,
}

impl ChaosSpec {
    /// A quiet spec over `horizon`: compiles to an empty schedule until
    /// rates are added.
    pub fn new(horizon: Duration) -> Self {
        ChaosSpec {
            horizon,
            partitions: 0,
            partition_min: Duration::ZERO,
            partition_max: Duration::ZERO,
            crashes: 0,
            crash_min: Duration::ZERO,
            crash_max: Duration::ZERO,
            churns: 0,
            detach_min: Duration::ZERO,
            detach_max: Duration::ZERO,
        }
    }

    /// Attempts `n` partition windows lasting `min..=max`.
    pub fn with_partitions(mut self, n: u32, min: Duration, max: Duration) -> Self {
        assert!(min <= max, "partition_min must not exceed partition_max");
        self.partitions = n;
        self.partition_min = min;
        self.partition_max = max;
        self
    }

    /// Attempts `n` crash windows lasting `min..=max`.
    pub fn with_crashes(mut self, n: u32, min: Duration, max: Duration) -> Self {
        assert!(min <= max, "crash_min must not exceed crash_max");
        self.crashes = n;
        self.crash_min = min;
        self.crash_max = max;
        self
    }

    /// Attempts `n` detach→attach cycles lasting `min..=max`.
    pub fn with_churn(mut self, n: u32, min: Duration, max: Duration) -> Self {
        assert!(min <= max, "detach_min must not exceed detach_max");
        self.churns = n;
        self.detach_min = min;
        self.detach_max = max;
        self
    }

    /// `true` if the spec compiles to an empty schedule for any world.
    pub fn is_quiet(&self) -> bool {
        self.partitions == 0 && self.crashes == 0 && self.churns == 0
    }
}

/// `(target, start_ns, end_ns)` windows, one category at a time.
fn draw_windows(
    rng: &mut SplitMix64,
    attempts: u32,
    targets: usize,
    horizon: Duration,
    min: Duration,
    max: Duration,
) -> Vec<(usize, u64, u64)> {
    if attempts == 0 || targets == 0 {
        return Vec::new();
    }
    let horizon_ns = u64::try_from(horizon.as_nanos()).expect("horizon too large");
    assert!(horizon_ns > 0, "chaos horizon must be positive");
    let min_ns = u64::try_from(min.as_nanos()).expect("duration too large");
    let max_ns = u64::try_from(max.as_nanos()).expect("duration too large");
    let mut windows = Vec::with_capacity(attempts as usize);
    for _ in 0..attempts {
        let target = if targets == 1 {
            0
        } else {
            rng.gen_range(0..targets as u64) as usize
        };
        let start = rng.gen_range(0..horizon_ns);
        let dur = if max_ns > min_ns {
            min_ns + rng.gen_range(0..max_ns - min_ns + 1)
        } else {
            min_ns
        };
        windows.push((target, start, start.saturating_add(dur.max(1))));
    }
    // Per-target overlap pruning: keep the earliest-starting window of
    // any overlapping pair (ties broken by end, then draw order through
    // the stable sort).
    windows.sort_by_key(|&(t, s, e)| (t, s, e));
    let mut kept: Vec<(usize, u64, u64)> = Vec::with_capacity(windows.len());
    for w in windows {
        if let Some(&(pt, _, pe)) = kept.last() {
            if pt == w.0 && w.1 < pe {
                continue;
            }
        }
        kept.push(w);
    }
    kept
}

/// Compiles `spec` into a time-sorted event schedule for a world with
/// `links` inter-system links, `isps` IS-process slots and the systems
/// in `churnable` eligible for detach/attach cycles.
///
/// Determinism: the three event categories draw from independent RNG
/// streams derived from `seed`, so changing one rate never perturbs the
/// schedule of another category. The same `(spec, seed, topology)`
/// always compiles to the same schedule.
///
/// # Panics
///
/// Panics if the spec requests windows over a zero horizon.
pub fn compile(
    spec: &ChaosSpec,
    seed: u64,
    links: usize,
    isps: usize,
    churnable: &[usize],
) -> Vec<ChaosEvent> {
    let mut events = Vec::new();
    let push_pair = |events: &mut Vec<ChaosEvent>,
                     windows: Vec<(usize, u64, u64)>,
                     open: fn(usize) -> ChaosEventKind,
                     close: fn(usize) -> ChaosEventKind| {
        for (target, start, end) in windows {
            events.push(ChaosEvent {
                at: SimTime::from_nanos(start),
                kind: open(target),
            });
            events.push(ChaosEvent {
                at: SimTime::from_nanos(end),
                kind: close(target),
            });
        }
    };
    let mut rng = derive_rng(seed, 0x6368_0001);
    push_pair(
        &mut events,
        draw_windows(
            &mut rng,
            spec.partitions,
            links,
            spec.horizon,
            spec.partition_min,
            spec.partition_max,
        ),
        |link| ChaosEventKind::Partition { link },
        |link| ChaosEventKind::Heal { link },
    );
    let mut rng = derive_rng(seed, 0x6368_0002);
    push_pair(
        &mut events,
        draw_windows(
            &mut rng,
            spec.crashes,
            isps,
            spec.horizon,
            spec.crash_min,
            spec.crash_max,
        ),
        |isp| ChaosEventKind::Crash { isp },
        |isp| ChaosEventKind::Recover { isp },
    );
    let mut rng = derive_rng(seed, 0x6368_0003);
    let churn_windows = draw_windows(
        &mut rng,
        spec.churns,
        churnable.len(),
        spec.horizon,
        spec.detach_min,
        spec.detach_max,
    )
    .into_iter()
    .map(|(i, s, e)| (churnable[i], s, e))
    .collect();
    push_pair(
        &mut events,
        churn_windows,
        |system| ChaosEventKind::Detach { system },
        |system| ChaosEventKind::Attach { system },
    );
    sort_schedule(&mut events);
    events
}

/// Sorts a schedule into application order: by instant, closings first
/// at ties, then by (category, target). Use this after merging compiled
/// events with hand-scripted ones (scenario `membership` blocks) so the
/// combined schedule applies exactly like a compiled one.
pub fn sort_schedule(events: &mut [ChaosEvent]) {
    events.sort_by_key(|e| {
        let (category, target) = e.kind.key();
        (e.at, !e.kind.is_closing(), category, target)
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn busy_spec() -> ChaosSpec {
        ChaosSpec::new(ms(1000))
            .with_partitions(6, ms(20), ms(120))
            .with_crashes(4, ms(10), ms(60))
            .with_churn(5, ms(30), ms(150))
    }

    #[test]
    fn quiet_spec_compiles_to_nothing() {
        let spec = ChaosSpec::new(ms(500));
        assert!(spec.is_quiet());
        assert!(compile(&spec, 7, 3, 6, &[1, 2]).is_empty());
    }

    #[test]
    fn same_seed_compiles_identically() {
        let spec = busy_spec();
        let a = compile(&spec, 42, 2, 4, &[1, 2]);
        let b = compile(&spec, 42, 2, 4, &[1, 2]);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = compile(&spec, 43, 2, 4, &[1, 2]);
        assert_ne!(a, c, "different seeds draw different schedules");
    }

    #[test]
    fn schedule_is_time_sorted_with_closings_first_on_ties() {
        let events = compile(&busy_spec(), 9, 3, 6, &[0, 1, 2]);
        for pair in events.windows(2) {
            assert!(pair[0].at <= pair[1].at, "{} before {}", pair[0], pair[1]);
            if pair[0].at == pair[1].at {
                assert!(
                    pair[0].kind.is_closing() || !pair[1].kind.is_closing(),
                    "closing events sort first at equal instants"
                );
            }
        }
    }

    #[test]
    fn windows_never_overlap_per_target() {
        // Many attempts on one link force pruning to kick in.
        let spec = ChaosSpec::new(ms(300)).with_partitions(40, ms(10), ms(80));
        let events = compile(&spec, 5, 1, 0, &[]);
        assert!(!events.is_empty());
        let mut open = false;
        for e in &events {
            match e.kind {
                ChaosEventKind::Partition { link } => {
                    assert_eq!(link, 0);
                    assert!(!open, "partition while already partitioned");
                    open = true;
                }
                ChaosEventKind::Heal { link } => {
                    assert_eq!(link, 0);
                    assert!(open, "heal without a partition");
                    open = false;
                }
                other => panic!("unexpected event {other}"),
            }
        }
        assert!(!open, "every partition heals");
    }

    #[test]
    fn churn_only_touches_churnable_systems() {
        let spec = ChaosSpec::new(ms(800)).with_churn(12, ms(10), ms(50));
        let events = compile(&spec, 11, 0, 0, &[2, 4]);
        assert!(!events.is_empty());
        for e in &events {
            match e.kind {
                ChaosEventKind::Detach { system } | ChaosEventKind::Attach { system } => {
                    assert!(system == 2 || system == 4, "churned system {system}");
                }
                other => panic!("unexpected event {other}"),
            }
        }
    }

    #[test]
    fn categories_draw_from_independent_streams() {
        let base = busy_spec();
        let more_crashes = ChaosSpec {
            crashes: base.crashes + 3,
            ..base
        };
        let a = compile(&base, 21, 3, 6, &[1]);
        let b = compile(&more_crashes, 21, 3, 6, &[1]);
        let partitions = |evs: &[ChaosEvent]| {
            evs.iter()
                .filter(|e| matches!(e.kind, ChaosEventKind::Partition { .. }))
                .copied()
                .collect::<Vec<_>>()
        };
        assert_eq!(
            partitions(&a),
            partitions(&b),
            "crash rate change must not shift partition draws"
        );
    }

    #[test]
    fn display_renders_compactly() {
        let e = ChaosEvent {
            at: SimTime::from_millis(250),
            kind: ChaosEventKind::Detach { system: 2 },
        };
        assert_eq!(e.to_string(), "t=250ms detach system 2");
    }
}
