//! The discrete-event engine: event queue, scheduler and world assembly.

use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

use cmi_obs::{
    LineageRecorder, MetricId, MetricsRegistry, SpanId, SpanStats, TelemetryConfig, TimeSeries,
};
use cmi_types::SimTime;

use crate::actor::{Actor, ActorId, Ctx};
use crate::channel::{ChannelCounters, ChannelSpec, ChannelState};
use crate::rng::{derive_rng, derive_seed, SplitMix64};
use crate::sched::CalendarQueue;
use crate::stats::{NetworkTag, TrafficStats};
use crate::tap::RunTap;
use crate::trace::{TraceEntry, TraceKind, TraceSink};

/// What should stop a [`Sim::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunLimit {
    /// Do not process events scheduled after this instant.
    pub max_time: Option<SimTime>,
    /// Process at most this many events in this call.
    pub max_events: Option<u64>,
}

impl RunLimit {
    /// Run until no events remain (quiescence).
    pub fn unlimited() -> Self {
        RunLimit {
            max_time: None,
            max_events: None,
        }
    }

    /// Run until quiescent or until the next event would be after `t`.
    pub fn until(t: SimTime) -> Self {
        RunLimit {
            max_time: Some(t),
            max_events: None,
        }
    }

    /// Run until quiescent or until `n` events have been processed.
    pub fn events(n: u64) -> Self {
        RunLimit {
            max_time: None,
            max_events: Some(n),
        }
    }
}

/// Why a [`Sim::run`] call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Quiescent {
        /// Events processed during this call.
        events: u64,
    },
    /// The next pending event lies beyond the time limit.
    TimeLimit {
        /// Events processed during this call.
        events: u64,
    },
    /// The per-call event budget was exhausted.
    EventLimit {
        /// Events processed during this call.
        events: u64,
    },
}

impl RunOutcome {
    /// `true` if the run drained the queue.
    pub fn is_quiescent(self) -> bool {
        matches!(self, RunOutcome::Quiescent { .. })
    }

    /// Events processed during the call.
    pub fn events(self) -> u64 {
        match self {
            RunOutcome::Quiescent { events }
            | RunOutcome::TimeLimit { events }
            | RunOutcome::EventLimit { events } => events,
        }
    }
}

enum EventPayload<M> {
    Message { from: ActorId, to: ActorId, msg: M },
    Timer { actor: ActorId, token: u64 },
}

/// Damages a message in place when the channel injects corruption; the
/// RNG is seeded from the channel's own fault stream so the damage
/// replays deterministically.
pub type Corrupter<M> = Box<dyn FnMut(&mut M, &mut SplitMix64)>;

/// The engine's own counters, interned once at build time so the event
/// loop records them by index instead of by name.
#[derive(Debug, Clone, Copy)]
struct EngineIds {
    messages_sent: MetricId,
    payload_units: MetricId,
    crossings: MetricId,
    events_dispatched: MetricId,
    timer_fires: MetricId,
    queue_depth_max: MetricId,
}

impl EngineIds {
    fn resolve(metrics: &mut MetricsRegistry) -> Self {
        EngineIds {
            messages_sent: metrics.key("engine.messages_sent"),
            payload_units: metrics.key("engine.payload_units"),
            crossings: metrics.key("engine.crossings"),
            events_dispatched: metrics.key("engine.events_dispatched"),
            timer_fires: metrics.key("engine.timer_fires"),
            queue_depth_max: metrics.key("engine.queue_depth_max"),
        }
    }
}

/// Engine internals shared with [`Ctx`]; not part of the public API.
pub(crate) struct Engine<M> {
    pub(crate) now: SimTime,
    queue: CalendarQueue<EventPayload<M>>,
    seq: u64,
    /// Dense channel states, indexed by the adjacency table.
    channels: Vec<ChannelState>,
    /// Per-sender adjacency rows `(to, channel index)`, sorted by `to` —
    /// resolved once at build so the send path never hashes.
    adjacency: Vec<Vec<(u32, u32)>>,
    /// Local → global actor identity (identity unless the world is a
    /// shard of a larger one); stats, traces, channel metric names and
    /// RNG streams all use the global id so a shard reproduces the
    /// serial world's output byte-for-byte.
    global: Vec<ActorId>,
    /// Queue-depth class per local actor (all 0 unless set); the
    /// `engine.queue_depth_max` gauge tracks the per-class maximum so
    /// serial and sharded runs agree (max across shards).
    depth_class: Vec<u32>,
    /// Live pending-event count per depth class.
    class_depth: Vec<u64>,
    tags: Vec<NetworkTag>,
    pub(crate) actor_rngs: Vec<SplitMix64>,
    jitter_rng: SplitMix64,
    corrupter: Option<Corrupter<M>>,
    stats: TrafficStats,
    metrics: MetricsRegistry,
    ids: EngineIds,
    trace: Option<Vec<TraceEntry>>,
    lineage: Option<LineageRecorder>,
    tap: Option<Box<dyn RunTap>>,
    /// Lineage events already streamed to the tap (watermark).
    lineage_fed: usize,
    sinks: Vec<Box<dyn TraceSink>>,
    /// Flight-recorder telemetry (`None` = disabled, the default: one
    /// branch per event, no sampling state allocated).
    telemetry: Option<Box<TimeSeries>>,
    /// Wall-clock span profiling of engine phases; enabled together
    /// with telemetry, never written into the deterministic timeline.
    spans: Option<Box<SpanStats>>,
}

impl<M: fmt::Debug + Clone> Engine<M> {
    // AUDIT:HOT-BEGIN — event-loop send/push path: metric access only by
    // interned id, no formatting, no hashing, no per-event allocation.
    fn push(&mut self, at: SimTime, payload: EventPayload<M>) {
        let seq = self.seq;
        self.seq += 1;
        let target = match &payload {
            EventPayload::Message { to, .. } => to.index(),
            EventPayload::Timer { actor, .. } => actor.index(),
        };
        let class = self.depth_class[target];
        self.class_depth[class as usize] += 1;
        self.queue.push(at.as_nanos(), seq, class, payload);
    }

    /// Dense-table channel lookup: linear scan for the short rows that
    /// dominate real topologies, binary search above that.
    fn channel_index(&self, from: ActorId, to: ActorId) -> Option<usize> {
        let row = self.adjacency.get(from.index())?;
        if row.len() <= 8 {
            row.iter()
                .find(|&&(t, _)| t == to.0)
                .map(|&(_, i)| i as usize)
        } else {
            row.binary_search_by_key(&to.0, |&(t, _)| t)
                .ok()
                .map(|p| row[p].1 as usize)
        }
    }

    pub(crate) fn send(&mut self, from: ActorId, to: ActorId, msg: M) {
        let ci = self
            .channel_index(from, to)
            .unwrap_or_else(|| panic!("no channel {from} → {to} registered in the topology"));
        let channel = &mut self.channels[ci];
        if channel.blocked {
            // Partitioned: the send is discarded at the send instant
            // (messages already in flight still arrive). No RNG stream is
            // touched, so healing resumes the exact unpartitioned draws.
            let counters = channel
                .counters
                .expect("channel counters resolved at build");
            self.metrics.inc_id(counters.partitioned);
            return;
        }
        let jitter = if channel.spec.jitter.is_zero() {
            Duration::ZERO
        } else {
            let max = u64::try_from(channel.spec.jitter.as_nanos()).expect("jitter too large");
            Duration::from_nanos(self.jitter_rng.gen_range(0..max))
        };
        let plan = channel.plan(self.now, jitter);
        let counters = channel
            .counters
            .expect("channel counters resolved at build");
        if plan.dropped {
            self.metrics.inc_id(counters.dropped);
            return;
        }
        if plan.duplicated {
            self.metrics.inc_id(counters.duplicated);
        }
        if plan.reordered {
            self.metrics.inc_id(counters.reordered);
        }
        let mut msg = msg;
        if plan.corrupted {
            self.metrics.inc_id(counters.corrupted);
            if let Some(corrupter) = self.corrupter.as_mut() {
                let mut damage_rng = SplitMix64::seed_from_u64(plan.corrupt_seed);
                corrupter(&mut msg, &mut damage_rng);
            }
        }
        let payload_units = std::mem::size_of_val(&msg) as u64;
        let deliveries = plan.deliveries.as_slice();
        let last = deliveries.len() - 1;
        let mut remaining = Some(msg);
        for (i, &delivery) in deliveries.iter().enumerate() {
            let m = if i == last {
                remaining.take().expect("one message per delivery list")
            } else {
                remaining.as_ref().expect("clone before the move").clone()
            };
            self.count_send(from, to, payload_units);
            if self.tracing() {
                self.trace_sent(from, to, delivery, &m);
            }
            self.push(delivery, EventPayload::Message { from, to, msg: m });
        }
    }

    /// Scalar per-send accounting shared by originals and duplicates.
    /// Stats are keyed by *global* actor identity so shard-local runs
    /// merge into the serial tables without translation.
    fn count_send(&mut self, from: ActorId, to: ActorId, payload_units: u64) {
        let (from_tag, to_tag) = (self.tags[from.index()], self.tags[to.index()]);
        let (gfrom, gto) = (self.global[from.index()], self.global[to.index()]);
        self.stats.on_send(gfrom, gto, from_tag, to_tag);
        self.metrics.inc_id(self.ids.messages_sent);
        self.metrics.add_id(self.ids.payload_units, payload_units);
        if from_tag != to_tag {
            self.metrics.inc_id(self.ids.crossings);
        }
    }
    // AUDIT:HOT-END

    /// Renders and records a `Sent` trace entry. Cold: only reached when
    /// a trace consumer is attached, so the Debug render (the only
    /// allocation on the send path) never happens in plain runs.
    #[cold]
    fn trace_sent(&mut self, from: ActorId, to: ActorId, delivery: SimTime, msg: &M) {
        let rendered = render_debug(msg);
        self.emit_trace(TraceEntry {
            at: self.now,
            kind: TraceKind::Sent {
                from: self.global[from.index()],
                to: self.global[to.index()],
                delivery,
                msg: rendered,
            },
        });
    }

    /// Renders and records a `Delivered` trace entry; cold like
    /// [`trace_sent`](Engine::trace_sent).
    #[cold]
    fn trace_delivered(&mut self, at: SimTime, from: ActorId, to: ActorId, msg: &M) {
        let rendered = render_debug(msg);
        self.emit_trace(TraceEntry {
            at,
            kind: TraceKind::Delivered {
                from: self.global[from.index()],
                to: self.global[to.index()],
                msg: rendered,
            },
        });
    }

    pub(crate) fn schedule_timer(&mut self, actor: ActorId, delay: Duration, token: u64) {
        let at = self.now + delay;
        self.push(at, EventPayload::Timer { actor, token });
    }

    pub(crate) fn has_channel(&self, from: ActorId, to: ActorId) -> bool {
        self.channel_index(from, to).is_some()
    }

    pub(crate) fn set_blocked(&mut self, from: ActorId, to: ActorId, blocked: bool) {
        let ci = self
            .channel_index(from, to)
            .unwrap_or_else(|| panic!("no channel {from} → {to} registered in the topology"));
        self.channels[ci].blocked = blocked;
    }

    pub(crate) fn note(&mut self, actor: ActorId, text: String) {
        if self.tracing() {
            self.emit_trace(TraceEntry {
                at: self.now,
                kind: TraceKind::Note {
                    actor: self.global[actor.index()],
                    text,
                },
            });
        }
    }

    /// `true` if any trace consumer is active (lets callers skip the
    /// `format!` cost of rendering messages nobody will see).
    pub(crate) fn tracing(&self) -> bool {
        self.trace.is_some() || !self.sinks.is_empty()
    }

    pub(crate) fn emit_trace(&mut self, entry: TraceEntry) {
        for sink in &mut self.sinks {
            sink.record(&entry);
        }
        if let Some(trace) = &mut self.trace {
            trace.push(entry);
        }
    }

    pub(crate) fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    pub(crate) fn lineage_mut(&mut self) -> Option<&mut LineageRecorder> {
        self.lineage.as_mut()
    }

    pub(crate) fn tap_mut(&mut self) -> Option<&mut (dyn RunTap + 'static)> {
        self.tap.as_deref_mut()
    }

    /// Streams lineage events recorded since the last call to the tap.
    /// A single branch when no tap is installed (the default).
    pub(crate) fn feed_tap(&mut self) {
        let Some(tap) = self.tap.as_deref_mut() else {
            return;
        };
        let Some(lineage) = self.lineage.as_ref() else {
            return;
        };
        let events = lineage.events();
        for ev in &events[self.lineage_fed..] {
            tap.lineage_event(ev);
        }
        self.lineage_fed = events.len();
    }

    /// `true` when telemetry is installed and the next cadence tick has
    /// arrived — the one cheap check the event loop pays per event.
    #[inline]
    pub(crate) fn telemetry_due(&self) -> bool {
        matches!(&self.telemetry, Some(t) if t.is_due(self.now.as_nanos()))
    }

    /// Takes one telemetry sample of the live registry. Cold: only
    /// reached on cadence ticks of telemetry-enabled runs.
    #[cold]
    pub(crate) fn telemetry_sample(&mut self) {
        let now_ns = self.now.as_nanos();
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.sample(now_ns, &self.metrics);
        }
    }

    /// `true` when span profiling is active (callers read the wall clock
    /// only behind this check, so disabled runs pay one branch).
    #[inline]
    pub(crate) fn profiling(&self) -> bool {
        self.spans.is_some()
    }

    /// Records one timed span. Cold: only reached when profiling is on.
    #[cold]
    pub(crate) fn record_span(&mut self, id: SpanId, ns: u64) {
        if let Some(s) = self.spans.as_deref_mut() {
            s.record(id, ns);
        }
    }
}

/// The single place a message's Debug form is rendered for tracing;
/// callers guard on [`Engine::tracing`] so this never runs in plain
/// (untraced) simulations.
fn render_debug<M: fmt::Debug>(msg: &M) -> String {
    format!("{msg:?}")
}

/// Builder assembling actors and channels into a [`Sim`].
pub struct SimBuilder<M> {
    actors: Vec<Box<dyn Actor<M>>>,
    tags: Vec<NetworkTag>,
    channels: HashMap<(ActorId, ActorId), ChannelState>,
    seed: u64,
    trace: bool,
    lineage: bool,
    tap: Option<Box<dyn RunTap>>,
    sinks: Vec<Box<dyn TraceSink>>,
    corrupter: Option<Corrupter<M>>,
    telemetry: Option<TelemetryConfig>,
    global_ids: Option<Vec<u32>>,
    depth_classes: Option<Vec<u32>>,
}

impl<M: fmt::Debug + Clone + 'static> SimBuilder<M> {
    /// Creates a builder whose world is seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SimBuilder {
            actors: Vec::new(),
            tags: Vec::new(),
            channels: HashMap::new(),
            seed,
            trace: false,
            lineage: false,
            tap: None,
            sinks: Vec::new(),
            corrupter: None,
            telemetry: None,
            global_ids: None,
            depth_classes: None,
        }
    }

    /// Registers an actor on network `tag` and returns its id.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>, tag: NetworkTag) -> ActorId {
        let id = ActorId(u32::try_from(self.actors.len()).expect("too many actors"));
        self.actors.push(actor);
        self.tags.push(tag);
        id
    }

    /// Registers a unidirectional channel `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if the channel already exists or either endpoint is
    /// unknown — both are harness bugs.
    pub fn connect(&mut self, from: ActorId, to: ActorId, spec: ChannelSpec) {
        assert!(from.index() < self.actors.len(), "unknown sender {from}");
        assert!(to.index() < self.actors.len(), "unknown receiver {to}");
        assert_ne!(from, to, "self-channels are not allowed");
        let prev = self.channels.insert((from, to), ChannelState::new(spec));
        assert!(prev.is_none(), "duplicate channel {from} → {to}");
    }

    /// Registers channels in both directions with the same spec.
    pub fn connect_bidi(&mut self, a: ActorId, b: ActorId, spec: ChannelSpec) {
        self.connect(a, b, spec.clone());
        self.connect(b, a, spec);
    }

    /// Installs the hook that damages a message when its channel injects
    /// payload corruption (see [`FaultSpec::with_corruption`]).
    ///
    /// Without a corrupter, corrupted sends are still counted in the
    /// `channel.*.corrupted` metric but the payload is delivered intact —
    /// corruption is then purely an accounting event. The hook receives an
    /// RNG seeded from the channel's own fault stream, so the damage is
    /// part of the deterministic replay.
    ///
    /// [`FaultSpec::with_corruption`]: crate::channel::FaultSpec::with_corruption
    pub fn set_corrupter(&mut self, f: impl FnMut(&mut M, &mut SplitMix64) + 'static) {
        self.corrupter = Some(Box::new(f));
    }

    /// Enables the human-readable event trace (off by default; tracing
    /// every event costs memory proportional to the run).
    pub fn enable_trace(&mut self) {
        self.trace = true;
    }

    /// Enables causal lineage recording (off by default). When enabled,
    /// actors can reach the world's [`LineageRecorder`] through
    /// [`Ctx::lineage`] and the run's accumulated record is retrieved
    /// with [`Sim::take_lineage`]. When disabled, [`Ctx::lineage`]
    /// returns `None` and no lineage state is ever allocated.
    ///
    /// [`Ctx::lineage`]: crate::actor::Ctx::lineage
    pub fn enable_lineage(&mut self) {
        self.lineage = true;
    }

    /// Installs a [`RunTap`] that observes the run as a stream:
    /// protocol actors feed it memory operations through
    /// [`Ctx::tap`](crate::actor::Ctx::tap), and the engine feeds it
    /// lineage events (when lineage is enabled) after every dispatched
    /// event. Off by default; a run without a tap pays one branch per
    /// event.
    pub fn set_tap(&mut self, tap: Box<dyn RunTap>) {
        self.tap = Some(tap);
    }

    /// Enables flight-recorder telemetry (off by default): the engine
    /// samples the metric registry at `cfg`'s virtual-time cadence into
    /// a bounded delta-encoded timeline, evaluates `cfg`'s watchdogs at
    /// every sample, and profiles the engine's phases with wall-clock
    /// spans. The finished recorder is retrieved with
    /// [`Sim::take_telemetry`]. A disabled run allocates no telemetry
    /// state and pays one branch per event.
    pub fn enable_telemetry(&mut self, cfg: TelemetryConfig) {
        self.telemetry = Some(cfg);
    }

    /// Registers a [`TraceSink`] that receives every trace entry of the
    /// run as it happens (independently of [`enable_trace`]'s in-memory
    /// log). Sinks are invoked in registration order. Returns the sink's
    /// index for later retrieval with [`Sim::sink_mut`].
    ///
    /// [`enable_trace`]: SimBuilder::enable_trace
    pub fn add_trace_sink(&mut self, sink: Box<dyn TraceSink>) -> usize {
        self.sinks.push(sink);
        self.sinks.len() - 1
    }

    /// Number of actors registered so far.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Assigns each local actor a *global* identity (one entry per
    /// registered actor, in registration order). RNG streams, channel
    /// fault streams, stats keys, channel metric names and trace entries
    /// all use the global id, so a world built as a shard of a larger
    /// layout reproduces exactly the byte output the full serial world
    /// attributes to those actors. Defaults to the identity mapping.
    pub fn set_global_ids(&mut self, ids: Vec<u32>) {
        self.global_ids = Some(ids);
    }

    /// Assigns each local actor a queue-depth class (one entry per
    /// registered actor). The `engine.queue_depth_max` gauge records the
    /// maximum *per-class* pending-event count — with one class per
    /// independent component, a serial run and a sharded run (which
    /// merges the gauge as a max across shards) report the same value.
    /// Defaults to a single class, which is the total queue depth.
    pub fn set_depth_classes(&mut self, classes: Vec<u32>) {
        self.depth_classes = Some(classes);
    }

    /// Finalizes the world.
    pub fn build(self) -> Sim<M> {
        let n = self.actors.len();
        let global: Vec<ActorId> = match self.global_ids {
            Some(ids) => {
                assert_eq!(ids.len(), n, "one global id per actor");
                ids.into_iter().map(ActorId).collect()
            }
            None => (0..n).map(|i| ActorId(i as u32)).collect(),
        };
        let depth_class = match self.depth_classes {
            Some(classes) => {
                assert_eq!(classes.len(), n, "one depth class per actor");
                classes
            }
            None => vec![0; n],
        };
        let n_classes = depth_class.iter().copied().max().unwrap_or(0) as usize + 1;
        let actor_rngs = (0..n)
            .map(|i| derive_rng(self.seed, u64::from(global[i].0)))
            .collect();
        // Each channel gets a fault stream derived from the world seed and
        // its (global) endpoint ids, so the stream is independent of
        // registration order and identical whether the endpoint runs in
        // the full world or in a shard.
        let fault_seed = derive_seed(self.seed, u64::MAX - 1);
        // Intern every metric name the event loop will ever touch up
        // front: the engine's own counters plus the four fault counters
        // of every channel. Interned-but-untouched names never appear in
        // snapshots, so pre-resolving cannot change any output.
        let mut metrics = MetricsRegistry::new();
        let ids = EngineIds::resolve(&mut metrics);
        // Resolve the channel map into a dense state table plus a
        // per-sender adjacency index, both in sorted key order so the
        // layout is deterministic; the event loop never hashes again.
        let mut keyed: Vec<((ActorId, ActorId), ChannelState)> =
            self.channels.into_iter().collect();
        keyed.sort_by_key(|&(k, _)| k);
        let mut channels = Vec::with_capacity(keyed.len());
        let mut adjacency: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for ((from, to), mut state) in keyed {
            let (gfrom, gto) = (global[from.index()], global[to.index()]);
            let key = (u64::from(gfrom.0) << 32) | u64::from(gto.0);
            state.fault_rng = derive_rng(fault_seed, key);
            state.counters = Some(ChannelCounters::resolve(&mut metrics, gfrom, gto));
            adjacency[from.index()].push((to.0, channels.len() as u32));
            channels.push(state);
        }
        Sim {
            engine: Engine {
                now: SimTime::ZERO,
                queue: CalendarQueue::new(),
                seq: 0,
                channels,
                adjacency,
                global,
                depth_class,
                class_depth: vec![0; n_classes],
                tags: self.tags,
                actor_rngs,
                jitter_rng: derive_rng(self.seed, u64::MAX),
                corrupter: self.corrupter,
                stats: TrafficStats::new(),
                metrics,
                ids,
                trace: if self.trace { Some(Vec::new()) } else { None },
                tap: self.tap,
                lineage_fed: 0,
                lineage: if self.lineage {
                    Some(LineageRecorder::new())
                } else {
                    None
                },
                sinks: self.sinks,
                spans: self.telemetry.as_ref().map(|_| Box::new(SpanStats::new())),
                telemetry: self.telemetry.map(|cfg| Box::new(TimeSeries::new(cfg))),
            },
            actors: self.actors,
            started: false,
            events_processed: 0,
        }
    }
}

/// A runnable simulated world.
pub struct Sim<M> {
    engine: Engine<M>,
    actors: Vec<Box<dyn Actor<M>>>,
    started: bool,
    events_processed: u64,
}

impl<M: fmt::Debug + Clone + 'static> Sim<M> {
    /// Processes events until the limit is reached or the queue drains.
    ///
    /// The first call also delivers `on_start` to every actor (in id
    /// order, at time zero). `run` can be called repeatedly with
    /// different limits; virtual time never goes backwards.
    pub fn run(&mut self, limit: RunLimit) -> RunOutcome {
        let mut events_this_call = 0u64;
        if !self.started {
            self.started = true;
            for i in 0..self.actors.len() {
                let me = ActorId(i as u32);
                let mut ctx = Ctx {
                    engine: &mut self.engine,
                    me,
                };
                self.actors[i].on_start(&mut ctx);
            }
        }
        // AUDIT:HOT-BEGIN — dispatch loop: pop from the calendar queue,
        // per-class depth gauge by interned id, no formatting.
        loop {
            let Some((head_at_ns, _, head_class)) = self.engine.queue.peek() else {
                return RunOutcome::Quiescent {
                    events: events_this_call,
                };
            };
            if let Some(max_time) = limit.max_time {
                if head_at_ns > max_time.as_nanos() {
                    return RunOutcome::TimeLimit {
                        events: events_this_call,
                    };
                }
            }
            if let Some(max_events) = limit.max_events {
                if events_this_call >= max_events {
                    return RunOutcome::EventLimit {
                        events: events_this_call,
                    };
                }
            }
            // Depth accounting *before* the pop, counting the head event
            // itself: total pending events of the head's class across the
            // slot ring, the live batch and the overflow heap.
            self.engine.metrics.gauge_max_id(
                self.engine.ids.queue_depth_max,
                self.engine.class_depth[head_class as usize] as f64,
            );
            let (at_ns, _, payload) = self.engine.queue.pop().expect("peeked event vanished");
            self.engine.class_depth[head_class as usize] -= 1;
            let at = SimTime::from_nanos(at_ns);
            debug_assert!(at >= self.engine.now, "time went backwards");
            self.engine.now = at;
            // Flight-recorder sampling happens on virtual-time cadence
            // ticks, before the event's effects — one branch per event
            // when telemetry is off.
            if self.engine.telemetry_due() {
                self.engine.telemetry_sample();
            }
            events_this_call += 1;
            self.events_processed += 1;
            self.engine
                .metrics
                .inc_id(self.engine.ids.events_dispatched);
            match payload {
                EventPayload::Message { from, to, msg } => {
                    if self.engine.tracing() {
                        self.engine.trace_delivered(at, from, to, &msg);
                    }
                    let t0 = self.engine.profiling().then(std::time::Instant::now);
                    let mut ctx = Ctx {
                        engine: &mut self.engine,
                        me: to,
                    };
                    self.actors[to.index()].on_message(from, msg, &mut ctx);
                    if let Some(t0) = t0 {
                        self.engine
                            .record_span(SpanId::Deliver, t0.elapsed().as_nanos() as u64);
                    }
                }
                EventPayload::Timer { actor, token } => {
                    self.engine.stats.on_timer();
                    self.engine.metrics.inc_id(self.engine.ids.timer_fires);
                    if self.engine.tracing() {
                        self.engine.emit_trace(TraceEntry {
                            at,
                            kind: TraceKind::Timer {
                                actor: self.engine.global[actor.index()],
                                token,
                            },
                        });
                    }
                    let t0 = self.engine.profiling().then(std::time::Instant::now);
                    let mut ctx = Ctx {
                        engine: &mut self.engine,
                        me: actor,
                    };
                    self.actors[actor.index()].on_timer(token, &mut ctx);
                    if let Some(t0) = t0 {
                        self.engine
                            .record_span(SpanId::Timer, t0.elapsed().as_nanos() as u64);
                    }
                }
            }
            let t0 = self.engine.profiling().then(std::time::Instant::now);
            self.engine.feed_tap();
            if let Some(t0) = t0 {
                self.engine
                    .record_span(SpanId::TapFeed, t0.elapsed().as_nanos() as u64);
            }
        }
        // AUDIT:HOT-END
    }

    /// Current virtual time (time of the last processed event).
    pub fn now(&self) -> SimTime {
        self.engine.now
    }

    /// Total events processed across all `run` calls.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Traffic statistics accumulated so far.
    pub fn stats(&self) -> &TrafficStats {
        &self.engine.stats
    }

    /// Mutable statistics, e.g. to [`reset`](TrafficStats::reset) after a
    /// warm-up phase.
    pub fn stats_mut(&mut self) -> &mut TrafficStats {
        &mut self.engine.stats
    }

    /// The recorded trace (empty unless
    /// [`SimBuilder::enable_trace`] was called).
    pub fn trace(&self) -> &[TraceEntry] {
        self.engine.trace.as_deref().unwrap_or(&[])
    }

    /// The accumulated lineage record (`None` unless
    /// [`SimBuilder::enable_lineage`] was called).
    pub fn lineage(&self) -> Option<&LineageRecorder> {
        self.engine.lineage.as_ref()
    }

    /// Takes ownership of the accumulated lineage record, leaving the
    /// world without one (subsequent [`Ctx::lineage`] calls see `None`).
    ///
    /// [`Ctx::lineage`]: crate::actor::Ctx::lineage
    pub fn take_lineage(&mut self) -> Option<LineageRecorder> {
        self.engine.lineage.take()
    }

    /// The live telemetry recorder (`None` unless
    /// [`SimBuilder::enable_telemetry`] was called, or after
    /// [`take_telemetry`](Sim::take_telemetry)).
    pub fn telemetry(&self) -> Option<&TimeSeries> {
        self.engine.telemetry.as_deref()
    }

    /// Takes ownership of the telemetry timeline, first recording a
    /// final sample at the current virtual time (so the timeline always
    /// ends with the run-final totals) and attaching the span profile.
    pub fn take_telemetry(&mut self) -> Option<TimeSeries> {
        let mut t = self.engine.telemetry.take()?;
        t.sample(self.engine.now.as_nanos(), &self.engine.metrics);
        if let Some(spans) = self.engine.spans.take() {
            t.set_spans(*spans);
        }
        Some(*t)
    }

    /// The live metrics registry: engine counters (`engine.*`) plus
    /// whatever the actors recorded through [`Ctx::metrics`].
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.engine.metrics
    }

    /// Mutable registry access, e.g. for harness-level observations.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        self.engine.metrics_mut()
    }

    /// A full metrics snapshot: the live registry plus the per-channel
    /// (`channel.*`) and per-crossing (`crossing.*`) counter tables
    /// mirrored from [`TrafficStats`], so a single artifact carries
    /// engine, channel, protocol and IS-process counters together.
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        let mut snapshot = self.engine.metrics.clone();
        self.engine.stats.export_into(&mut snapshot);
        snapshot
    }

    /// Flushes every registered trace sink (file-backed sinks buffer).
    pub fn flush_sinks(&mut self) {
        for sink in &mut self.engine.sinks {
            sink.flush();
        }
    }

    /// Downcasts the trace sink at `index` (as returned by
    /// [`SimBuilder::add_trace_sink`]) to its concrete type.
    pub fn sink_mut<T: 'static>(&mut self, index: usize) -> Option<&mut T> {
        self.engine
            .sinks
            .get_mut(index)?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Downcasts the actor `id` to its concrete type.
    pub fn actor<T: 'static>(&self, id: ActorId) -> Option<&T> {
        self.actors.get(id.index())?.as_any().downcast_ref::<T>()
    }

    /// Mutable downcast of the actor `id`.
    pub fn actor_mut<T: 'static>(&mut self, id: ActorId) -> Option<&mut T> {
        self.actors
            .get_mut(id.index())?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Number of actors in the world.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Sets or clears the partitioned state of the directed channel
    /// `from → to`. While partitioned, every send on the channel is
    /// discarded at the send instant and counted in
    /// `channel.{from}->{to}.partitioned`; messages already in flight
    /// still arrive. No RNG stream is consulted, so a heal resumes the
    /// channel's fault and jitter draws exactly where they stopped.
    ///
    /// # Panics
    ///
    /// Panics if the channel does not exist — a harness bug.
    pub fn set_channel_blocked(&mut self, from: ActorId, to: ActorId, blocked: bool) {
        self.engine.set_blocked(from, to, blocked);
    }

    /// Sets or clears the partitioned state of both directions of the
    /// link `a ↔ b` atomically (no event can interleave between the two
    /// direction updates — the engine is not running while this is
    /// called).
    ///
    /// # Panics
    ///
    /// Panics if either direction is missing — a harness bug.
    pub fn set_link_blocked(&mut self, a: ActorId, b: ActorId, blocked: bool) {
        self.engine.set_blocked(a, b, blocked);
        self.engine.set_blocked(b, a, blocked);
    }

    /// Injects a timer event for `actor`, firing `delay` after the
    /// current virtual time — the harness-side counterpart of
    /// [`Ctx::schedule`](crate::Ctx::schedule). Orchestrators that
    /// mutate actor state between run segments (chaos membership
    /// changes, crash scripts) use this to hand the actor a live
    /// context right after the surgery, so deferred work (resyncs,
    /// driver resumption) is not stranded until unrelated traffic
    /// happens to arrive.
    pub fn inject_timer(&mut self, actor: ActorId, delay: Duration, token: u64) {
        self.engine.schedule_timer(actor, delay, token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{Availability, FaultSpec};
    use std::any::Any;

    /// Test actor: floods `count` messages to a peer at start, records
    /// received payloads and timer tokens.
    struct Flood {
        peer: Option<ActorId>,
        count: u32,
        received: Vec<u32>,
        timers: Vec<u64>,
    }

    impl Flood {
        fn sender(peer: ActorId, count: u32) -> Box<Self> {
            Box::new(Flood {
                peer: Some(peer),
                count,
                received: Vec::new(),
                timers: Vec::new(),
            })
        }

        fn sink() -> Box<Self> {
            Box::new(Flood {
                peer: None,
                count: 0,
                received: Vec::new(),
                timers: Vec::new(),
            })
        }
    }

    impl Actor<u32> for Flood {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if let Some(peer) = self.peer {
                for i in 0..self.count {
                    ctx.send(peer, i);
                }
            }
        }

        fn on_message(&mut self, _from: ActorId, msg: u32, _ctx: &mut Ctx<'_, u32>) {
            self.received.push(msg);
        }

        fn on_timer(&mut self, token: u64, _ctx: &mut Ctx<'_, u32>) {
            self.timers.push(token);
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn two_actor_world(spec: ChannelSpec, count: u32, seed: u64) -> (Sim<u32>, ActorId, ActorId) {
        let mut b = SimBuilder::new(seed);
        let sink_id = ActorId(1);
        let a0 = b.add_actor(Flood::sender(sink_id, count), NetworkTag(0));
        let a1 = b.add_actor(Flood::sink(), NetworkTag(1));
        b.connect(a0, a1, spec);
        (b.build(), a0, a1)
    }

    #[test]
    fn messages_arrive_in_fifo_order() {
        let (mut sim, _a0, a1) = two_actor_world(ChannelSpec::fixed(ms(5)), 100, 7);
        let outcome = sim.run(RunLimit::unlimited());
        assert!(outcome.is_quiescent());
        let sink = sim.actor::<Flood>(a1).unwrap();
        assert_eq!(sink.received, (0..100).collect::<Vec<_>>());
        assert_eq!(sim.now(), SimTime::from_millis(5));
    }

    #[test]
    fn fifo_holds_under_jitter() {
        for seed in 0..20 {
            let (mut sim, _a0, a1) =
                two_actor_world(ChannelSpec::jittered(ms(5), ms(20)), 50, seed);
            sim.run(RunLimit::unlimited());
            let sink = sim.actor::<Flood>(a1).unwrap();
            assert_eq!(sink.received, (0..50).collect::<Vec<_>>(), "seed {seed}");
        }
    }

    #[test]
    fn identical_seeds_are_bit_identical() {
        let (mut s1, ..) = two_actor_world(ChannelSpec::jittered(ms(5), ms(20)), 50, 3);
        let (mut s2, ..) = two_actor_world(ChannelSpec::jittered(ms(5), ms(20)), 50, 3);
        s1.run(RunLimit::unlimited());
        s2.run(RunLimit::unlimited());
        assert_eq!(s1.now(), s2.now());
        assert_eq!(s1.stats(), s2.stats());
    }

    #[test]
    fn down_channel_queues_until_up() {
        let spec = ChannelSpec::fixed(ms(1))
            .with_availability(Availability::UpFrom(SimTime::from_millis(50)));
        let (mut sim, _a0, a1) = two_actor_world(spec, 3, 1);
        sim.run(RunLimit::unlimited());
        let sink = sim.actor::<Flood>(a1).unwrap();
        assert_eq!(sink.received, vec![0, 1, 2]);
        assert_eq!(sim.now(), SimTime::from_millis(51));
    }

    /// Sends one payload at t=0 and one more per timer fire.
    struct Beacon {
        peer: ActorId,
        sent: u32,
    }

    impl Actor<u32> for Beacon {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            ctx.send(self.peer, self.sent);
            self.sent += 1;
            ctx.schedule(ms(50), 0);
        }

        fn on_message(&mut self, _from: ActorId, _msg: u32, _ctx: &mut Ctx<'_, u32>) {}

        fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_, u32>) {
            ctx.send(self.peer, self.sent);
            self.sent += 1;
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn partitioned_channel_drops_sends_and_heals_cleanly() {
        // The t=0 send hits the partition and is discarded; healing
        // before the t=50ms beacon lets the next send through untouched.
        let mut b = SimBuilder::new(4);
        let peer = ActorId(1);
        let a0 = b.add_actor(Box::new(Beacon { peer, sent: 0 }), NetworkTag(0));
        let a1 = b.add_actor(Flood::sink(), NetworkTag(1));
        b.connect_bidi(a0, a1, ChannelSpec::fixed(ms(2)));
        let mut sim = b.build();
        sim.set_link_blocked(a0, a1, true);
        sim.run(RunLimit::until(SimTime::from_millis(20)));
        assert!(sim.actor::<Flood>(a1).unwrap().received.is_empty());
        assert_eq!(
            sim.metrics()
                .counter(&format!("channel.{a0}->{a1}.partitioned")),
            1
        );
        assert_eq!(sim.stats().total_messages(), 0, "dropped before accounting");
        sim.set_link_blocked(a0, a1, false);
        assert!(sim.run(RunLimit::unlimited()).is_quiescent());
        assert_eq!(
            sim.actor::<Flood>(a1).unwrap().received,
            vec![1],
            "the post-heal send arrives; the partitioned one is gone"
        );
        assert_eq!(
            sim.metrics()
                .counter(&format!("channel.{a0}->{a1}.partitioned")),
            1
        );
    }

    #[test]
    fn in_flight_messages_survive_a_partition() {
        let (mut sim, a0, a1) = two_actor_world(ChannelSpec::fixed(ms(10)), 5, 1);
        // Let the sends enter the channel, then partition mid-flight.
        sim.run(RunLimit::events(0));
        sim.set_channel_blocked(a0, a1, true);
        sim.run(RunLimit::unlimited());
        let sink = sim.actor::<Flood>(a1).unwrap();
        assert_eq!(
            sink.received,
            vec![0, 1, 2, 3, 4],
            "a partition severs sends, not deliveries already in flight"
        );
    }

    #[test]
    fn stats_count_sends_and_crossings() {
        let (mut sim, a0, a1) = two_actor_world(ChannelSpec::fixed(ms(1)), 10, 1);
        sim.run(RunLimit::unlimited());
        assert_eq!(sim.stats().total_messages(), 10);
        assert_eq!(sim.stats().channel_messages(a0, a1), 10);
        assert_eq!(sim.stats().crossings(), 10); // actors on different nets
    }

    #[test]
    fn time_limit_stops_before_late_events() {
        let (mut sim, ..) = two_actor_world(ChannelSpec::fixed(ms(10)), 5, 1);
        let outcome = sim.run(RunLimit::until(SimTime::from_millis(5)));
        assert_eq!(outcome, RunOutcome::TimeLimit { events: 0 });
        // Resume to quiescence.
        let outcome = sim.run(RunLimit::unlimited());
        assert_eq!(outcome, RunOutcome::Quiescent { events: 5 });
    }

    #[test]
    fn event_limit_is_resumable() {
        let (mut sim, _a0, a1) = two_actor_world(ChannelSpec::fixed(ms(10)), 5, 1);
        let outcome = sim.run(RunLimit::events(2));
        assert_eq!(outcome, RunOutcome::EventLimit { events: 2 });
        sim.run(RunLimit::unlimited());
        assert_eq!(sim.actor::<Flood>(a1).unwrap().received.len(), 5);
        assert_eq!(sim.events_processed(), 5);
    }

    /// An actor that schedules timers and checks firing order.
    struct Clockwork {
        fired: Vec<u64>,
    }

    impl Actor<u32> for Clockwork {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            ctx.schedule(ms(30), 3);
            ctx.schedule(ms(10), 1);
            ctx.schedule(ms(20), 2);
            ctx.schedule(ms(10), 11); // same instant as token 1; FIFO by insertion
        }

        fn on_message(&mut self, _from: ActorId, _msg: u32, _ctx: &mut Ctx<'_, u32>) {}

        fn on_timer(&mut self, token: u64, _ctx: &mut Ctx<'_, u32>) {
            self.fired.push(token);
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn timers_fire_in_time_then_insertion_order() {
        let mut b = SimBuilder::new(0);
        let id = b.add_actor(Box::new(Clockwork { fired: vec![] }), NetworkTag(0));
        let mut sim = b.build();
        sim.run(RunLimit::unlimited());
        assert_eq!(sim.actor::<Clockwork>(id).unwrap().fired, vec![1, 11, 2, 3]);
        assert_eq!(sim.stats().timer_events(), 4);
    }

    #[test]
    fn trace_records_send_delivery_and_notes() {
        let mut b = SimBuilder::new(0);
        b.enable_trace();
        let a1 = ActorId(1);
        let a0 = b.add_actor(Flood::sender(a1, 1), NetworkTag(0));
        b.add_actor(Flood::sink(), NetworkTag(0));
        b.connect(a0, a1, ChannelSpec::fixed(ms(2)));
        let mut sim = b.build();
        sim.run(RunLimit::unlimited());
        let trace = sim.trace();
        assert_eq!(trace.len(), 2);
        assert!(matches!(trace[0].kind, TraceKind::Sent { .. }));
        assert!(matches!(trace[1].kind, TraceKind::Delivered { .. }));
    }

    #[test]
    #[should_panic(expected = "no channel")]
    fn sending_without_channel_panics() {
        let mut b = SimBuilder::new(0);
        b.add_actor(Flood::sender(ActorId(1), 1), NetworkTag(0));
        b.add_actor(Flood::sink(), NetworkTag(0));
        // No connect() call.
        b.build().run(RunLimit::unlimited());
    }

    #[test]
    #[should_panic(expected = "duplicate channel")]
    fn duplicate_channel_panics() {
        let mut b = SimBuilder::new(0);
        let a0 = b.add_actor(Flood::sink(), NetworkTag(0));
        let a1 = b.add_actor(Flood::sink(), NetworkTag(0));
        b.connect(a0, a1, ChannelSpec::fixed(ms(1)));
        b.connect(a0, a1, ChannelSpec::fixed(ms(1)));
    }

    #[test]
    #[should_panic(expected = "self-channels")]
    fn self_channel_panics() {
        let mut b = SimBuilder::new(0);
        let a0 = b.add_actor(Flood::sink(), NetworkTag(0));
        b.connect(a0, a0, ChannelSpec::fixed(ms(1)));
    }

    #[test]
    fn duplicating_channel_delivers_twice_and_counts_twice() {
        let spec = ChannelSpec::fixed(ms(2)).with_faults(FaultSpec::none().with_duplication(1.0));
        let (mut sim, a0, a1) = two_actor_world(spec, 3, 1);
        sim.run(RunLimit::unlimited());
        let sink = sim.actor::<Flood>(a1).unwrap();
        assert_eq!(sink.received.len(), 6, "every message delivered twice");
        assert_eq!(sim.stats().channel_messages(a0, a1), 6);
        assert_eq!(sim.metrics().counter("channel.a0->a1.duplicated"), 3);
    }

    /// A payload whose `Debug` impl panics: if any dispatch path renders
    /// it while no trace consumer is attached, the test dies.
    #[derive(Clone)]
    struct Landmine(u32);

    impl fmt::Debug for Landmine {
        fn fmt(&self, _: &mut fmt::Formatter<'_>) -> fmt::Result {
            panic!("Debug rendered without a trace consumer attached")
        }
    }

    struct LandmineActor {
        peer: Option<ActorId>,
        count: u32,
        received: Vec<u32>,
    }

    impl Actor<Landmine> for LandmineActor {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Landmine>) {
            if let Some(peer) = self.peer {
                for i in 0..self.count {
                    ctx.send(peer, Landmine(i));
                }
            }
        }

        fn on_message(&mut self, _from: ActorId, msg: Landmine, _ctx: &mut Ctx<'_, Landmine>) {
            self.received.push(msg.0);
        }

        fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_, Landmine>) {}

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn no_debug_render_on_either_dispatch_path_without_trace_consumers() {
        // Duplication forces the clone branch of the send loop too, so
        // both the send and the deliver path are exercised per message.
        let spec = ChannelSpec::fixed(ms(2)).with_faults(FaultSpec::none().with_duplication(1.0));
        let mut b = SimBuilder::new(1);
        let a1 = ActorId(1);
        let a0 = b.add_actor(
            Box::new(LandmineActor {
                peer: Some(a1),
                count: 3,
                received: Vec::new(),
            }),
            NetworkTag(0),
        );
        b.add_actor(
            Box::new(LandmineActor {
                peer: None,
                count: 0,
                received: Vec::new(),
            }),
            NetworkTag(1),
        );
        b.connect(a0, a1, spec);
        let mut sim = b.build();
        sim.run(RunLimit::unlimited());
        assert_eq!(sim.actor::<LandmineActor>(a1).unwrap().received.len(), 6);
    }

    #[test]
    fn dropping_channel_loses_messages_and_counts_them() {
        let spec = ChannelSpec::fixed(ms(2)).with_faults(FaultSpec::none().with_drop(1.0));
        let (mut sim, a0, a1) = two_actor_world(spec, 5, 1);
        let outcome = sim.run(RunLimit::unlimited());
        assert!(outcome.is_quiescent());
        assert!(sim.actor::<Flood>(a1).unwrap().received.is_empty());
        assert_eq!(sim.stats().channel_messages(a0, a1), 0);
        assert_eq!(sim.metrics().counter("channel.a0->a1.dropped"), 5);
    }

    #[test]
    fn partial_loss_is_deterministic_across_replays() {
        let run = |seed| {
            let spec =
                ChannelSpec::jittered(ms(2), ms(3)).with_faults(FaultSpec::none().with_drop(0.4));
            let (mut sim, _a0, a1) = two_actor_world(spec, 50, seed);
            sim.run(RunLimit::unlimited());
            sim.actor::<Flood>(a1).unwrap().received.clone()
        };
        let first = run(9);
        assert_eq!(first, run(9), "same seed must replay identically");
        assert!(
            !first.is_empty() && first.len() < 50,
            "loss should be partial"
        );
        // FIFO still holds among survivors.
        assert!(first.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn reordering_fault_counts_and_still_delivers() {
        let spec =
            ChannelSpec::fixed(ms(1)).with_faults(FaultSpec::none().with_reordering(1.0, ms(20)));
        let (mut sim, _a0, a1) = two_actor_world(spec, 10, 3);
        sim.run(RunLimit::unlimited());
        assert_eq!(sim.actor::<Flood>(a1).unwrap().received.len(), 10);
        assert_eq!(sim.metrics().counter("channel.a0->a1.reordered"), 10);
    }

    #[test]
    fn corrupter_hook_damages_flagged_messages_deterministically() {
        let run = |seed| {
            let spec =
                ChannelSpec::fixed(ms(1)).with_faults(FaultSpec::none().with_corruption(0.5));
            let mut b = SimBuilder::new(seed);
            let a1 = ActorId(1);
            let a0 = b.add_actor(Flood::sender(a1, 20), NetworkTag(0));
            b.add_actor(Flood::sink(), NetworkTag(0));
            b.connect(a0, a1, spec);
            b.set_corrupter(|msg: &mut u32, rng| *msg ^= rng.next_u64() as u32 | 1);
            let mut sim = b.build();
            sim.run(RunLimit::unlimited());
            let corrupted = sim.metrics().counter("channel.a0->a1.corrupted");
            (sim.actor::<Flood>(a1).unwrap().received.clone(), corrupted)
        };
        let (received, corrupted) = run(4);
        assert_eq!(received.len(), 20, "corruption damages, never drops");
        let damaged = received.iter().filter(|&&m| m >= 20).count();
        assert_eq!(corrupted, damaged as u64);
        assert!(
            damaged > 0,
            "p=0.5 over 20 messages should hit at least once"
        );
        assert_eq!(run(4), (received, corrupted), "replays bit-identically");
    }

    #[test]
    fn scripted_drop_loses_exactly_the_scripted_message() {
        use crate::channel::FaultAction;
        let spec = ChannelSpec::fixed(ms(1))
            .with_faults(FaultSpec::none().with_scripted(2, FaultAction::Drop));
        let (mut sim, _a0, a1) = two_actor_world(spec, 5, 1);
        sim.run(RunLimit::unlimited());
        assert_eq!(sim.actor::<Flood>(a1).unwrap().received, vec![0, 1, 3, 4]);
    }

    #[test]
    fn fault_free_runs_are_unchanged_by_the_fault_machinery() {
        // The fast path must leave jittered schedules exactly as the
        // pre-fault engine produced them: an inactive FaultSpec draws
        // nothing from any RNG.
        let plain = {
            let (mut sim, ..) = two_actor_world(ChannelSpec::jittered(ms(5), ms(20)), 50, 3);
            sim.run(RunLimit::unlimited());
            (sim.now(), sim.stats().clone())
        };
        let with_spec = {
            let spec = ChannelSpec::jittered(ms(5), ms(20)).with_faults(FaultSpec::none());
            let (mut sim, ..) = two_actor_world(spec, 50, 3);
            sim.run(RunLimit::unlimited());
            (sim.now(), sim.stats().clone())
        };
        assert_eq!(plain, with_spec);
    }

    #[test]
    fn telemetry_records_a_deterministic_timeline_and_spans() {
        let run = || {
            let mut b = SimBuilder::new(3);
            let a1 = ActorId(1);
            let a0 = b.add_actor(Flood::sender(a1, 50), NetworkTag(0));
            b.add_actor(Flood::sink(), NetworkTag(1));
            b.connect(a0, a1, ChannelSpec::jittered(ms(5), ms(10)));
            b.enable_telemetry(TelemetryConfig::default().with_every_ms(1));
            let mut sim = b.build();
            sim.run(RunLimit::unlimited());
            assert!(sim.telemetry().is_some());
            let t = sim.take_telemetry().unwrap();
            assert!(sim.telemetry().is_none(), "take leaves no recorder");
            t
        };
        let t1 = run();
        assert!(t1.sample_count() >= 1, "cadence ticks produced samples");
        let dispatched = t1.series("engine.events_dispatched");
        assert_eq!(
            dispatched.last().unwrap().1,
            50.0,
            "final sample carries run-final totals"
        );
        // Span profiling ran (wall clock), but never touches the
        // timeline: the JSONL export is virtual-time deterministic.
        assert!(t1.spans().is_some());
        assert!(t1.spans().unwrap().count(SpanId::Deliver) > 0);
        let t2 = run();
        assert_eq!(t1.to_jsonl(), t2.to_jsonl(), "byte-identical timelines");
    }

    #[test]
    fn disabled_telemetry_allocates_nothing_and_yields_none() {
        let (mut sim, ..) = two_actor_world(ChannelSpec::fixed(ms(5)), 10, 1);
        sim.run(RunLimit::unlimited());
        assert!(sim.telemetry().is_none());
        assert!(sim.take_telemetry().is_none());
    }

    #[test]
    fn downcast_to_wrong_type_returns_none() {
        let mut b = SimBuilder::new(0);
        let a0 = b.add_actor(Flood::sink(), NetworkTag(0));
        let sim = b.build();
        assert!(sim.actor::<Clockwork>(a0).is_none());
        assert!(sim.actor::<Flood>(a0).is_some());
    }
}
