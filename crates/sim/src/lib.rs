//! Deterministic discrete-event network simulator for `cmi`.
//!
//! The paper's system model is a set of processes exchanging messages over
//! **reliable FIFO channels**; its Section 6 performance analysis is a
//! counting argument over messages, link crossings and delays, and its
//! Section 1.1 claims the interconnecting channel "does not need to be
//! available all the time". This crate provides exactly that substrate:
//!
//! * [`Sim`] — a single-threaded, seeded, discrete-event engine. Runs are
//!   bit-for-bit reproducible for a given seed, which makes the
//!   correctness experiments (Theorem 1 checking) and the performance
//!   experiments (message counting) deterministic.
//! * [`Actor`] — protocol state machines (MCS-processes with their
//!   attached application or IS-processes) driven by message and timer
//!   events.
//! * [`ChannelSpec`] — per-channel base delay, FIFO-preserving jitter, and
//!   an [`Availability`] schedule modelling dial-up links: messages sent
//!   while the link is down are queued and transmitted, in order, when it
//!   comes back up.
//! * [`TrafficStats`] — exact per-channel and per-network-crossing message
//!   counts, the currency of the paper's Section 6.
//!
//! # Example
//!
//! ```
//! use cmi_sim::{Actor, ActorId, ChannelSpec, Ctx, NetworkTag, RunLimit, SimBuilder};
//! use std::any::Any;
//! use std::time::Duration;
//!
//! struct Echo { got: Vec<u32> }
//! impl Actor<u32> for Echo {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
//!         if ctx.me() == ActorId(0) {
//!             ctx.send(ActorId(1), 7);
//!         }
//!     }
//!     fn on_message(&mut self, _from: ActorId, msg: u32, _ctx: &mut Ctx<'_, u32>) {
//!         self.got.push(msg);
//!     }
//!     fn as_any(&self) -> &dyn Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn Any { self }
//! }
//!
//! let mut b = SimBuilder::new(1);
//! let a0 = b.add_actor(Box::new(Echo { got: vec![] }), NetworkTag(0));
//! let a1 = b.add_actor(Box::new(Echo { got: vec![] }), NetworkTag(0));
//! b.connect(a0, a1, ChannelSpec::fixed(Duration::from_millis(1)));
//! let mut sim = b.build();
//! sim.run(RunLimit::unlimited());
//! assert_eq!(sim.actor::<Echo>(a1).unwrap().got, vec![7]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod channel;
pub mod chaos;
pub mod engine;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod tap;
pub mod trace;

pub use actor::{Actor, ActorId, Ctx};
pub use channel::{Availability, ChannelSpec, FaultAction, FaultSpec};
pub use chaos::{sort_schedule, ChaosEvent, ChaosEventKind, ChaosSpec};
pub use engine::{Corrupter, RunLimit, RunOutcome, Sim, SimBuilder};
pub use rng::{derive_rng, derive_seed, SplitMix64};
pub use sched::CalendarQueue;
pub use stats::{NetworkTag, TrafficStats};
pub use tap::RunTap;
pub use trace::{JsonlSink, RingSink, StderrSink, TraceEntry, TraceKind, TraceSink};
