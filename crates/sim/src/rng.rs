//! Deterministic randomness: seed derivation and the in-tree generator.
//!
//! Every random stream in a run (per-actor workload choices, per-channel
//! jitter) is derived from the single world seed with a SplitMix64 hash of
//! a stream label, so that adding or removing one stream never perturbs
//! the others and every experiment is reproducible from its seed alone.
//!
//! The generator itself is a SplitMix64 counter stream — one `u64` of
//! state, a fixed golden-ratio increment and a strong avalanche mixer.
//! It is implemented in-tree (no `rand` dependency) and its output is
//! byte-for-byte stable across platforms and releases; a golden test
//! below pins the stream.

use std::ops::Range;

/// SplitMix64 step: a fast, well-distributed 64-bit mixer.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a 64-bit subseed from `(world_seed, label)`.
pub fn derive_seed(world_seed: u64, label: u64) -> u64 {
    let mut state = world_seed ^ label.wrapping_mul(0xA24B_AED4_963E_E407);
    let a = splitmix64(&mut state);
    let b = splitmix64(&mut state);
    a ^ b.rotate_left(17)
}

/// Constructs the deterministic RNG for `(world_seed, label)`.
pub fn derive_rng(world_seed: u64, label: u64) -> SplitMix64 {
    SplitMix64::seed_from_u64(derive_seed(world_seed, label))
}

/// The workspace's pseudo-random generator: a SplitMix64 output stream.
///
/// Not cryptographic — it drives simulations, workloads and property
/// tests, where speed, tiny state and cross-platform reproducibility are
/// what matters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from a half-open range.
    ///
    /// Accepts `u32`, `u64`, `usize` and `f64` ranges (the widening-
    /// multiply bias for integer ranges is ≤ n/2⁶⁴ — irrelevant here).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range<T: UniformRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }
}

/// Types drawable uniformly from a `Range` by [`SplitMix64::gen_range`].
pub trait UniformRange: Sized {
    /// A uniform draw from `range`.
    fn sample(rng: &mut SplitMix64, range: Range<Self>) -> Self;
}

fn sample_u64(rng: &mut SplitMix64, start: u64, end: u64) -> u64 {
    assert!(start < end, "gen_range on empty range");
    let span = end - start;
    // Widening multiply maps 64 random bits onto [0, span).
    start + ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

impl UniformRange for u64 {
    fn sample(rng: &mut SplitMix64, range: Range<Self>) -> Self {
        sample_u64(rng, range.start, range.end)
    }
}

impl UniformRange for u32 {
    fn sample(rng: &mut SplitMix64, range: Range<Self>) -> Self {
        sample_u64(rng, u64::from(range.start), u64::from(range.end)) as u32
    }
}

impl UniformRange for usize {
    fn sample(rng: &mut SplitMix64, range: Range<Self>) -> Self {
        sample_u64(rng, range.start as u64, range.end as u64) as usize
    }
}

impl UniformRange for f64 {
    fn sample(rng: &mut SplitMix64, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range on empty range");
        range.start + rng.next_f64() * (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = derive_rng(42, 7);
        let mut b = derive_rng(42, 7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_different_streams() {
        let mut a = derive_rng(42, 0);
        let mut b = derive_rng(42, 1);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be practically independent");
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = derive_rng(1, 0);
        let mut b = derive_rng(2, 0);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn derive_seed_spreads_consecutive_labels() {
        let s0 = derive_seed(9, 0);
        let s1 = derive_seed(9, 1);
        assert_ne!(s0, s1);
        // Hamming distance should be substantial for a good mixer.
        assert!((s0 ^ s1).count_ones() > 8);
    }

    /// Byte-for-byte determinism: the stream for seed 0 is pinned to the
    /// published SplitMix64 reference values. If this test ever fails,
    /// every recorded experiment seed in the repo silently changed.
    #[test]
    fn golden_stream_for_seed_zero() {
        let mut r = SplitMix64::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
        assert_eq!(r.next_u64(), 0xF88B_B8A8_724C_81EC);
    }

    #[test]
    fn gen_range_stays_in_bounds_every_type() {
        let mut r = SplitMix64::seed_from_u64(99);
        for _ in 0..1000 {
            let a: u64 = r.gen_range(5u64..17);
            assert!((5..17).contains(&a));
            let b: u32 = r.gen_range(0u32..3);
            assert!(b < 3);
            let c: usize = r.gen_range(1usize..2);
            assert_eq!(c, 1);
            let d: f64 = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges_uniformly() {
        let mut r = SplitMix64::seed_from_u64(7);
        let mut hits = [0u32; 4];
        for _ in 0..4000 {
            hits[r.gen_range(0usize..4)] += 1;
        }
        for h in hits {
            assert!((800..1200).contains(&h), "skewed: {hits:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SplitMix64::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2300..2700).contains(&heads), "got {heads}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes_deterministically() {
        let mut a: Vec<u32> = (0..20).collect();
        let mut b = a.clone();
        derive_rng(11, 0).shuffle(&mut a);
        derive_rng(11, 0).shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(a, sorted, "20 elements virtually never shuffle to identity");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = SplitMix64::seed_from_u64(0).gen_range(3u32..3);
    }
}
