//! Deterministic seed derivation.
//!
//! Every random stream in a run (per-actor workload choices, per-channel
//! jitter) is derived from the single world seed with a SplitMix64 hash of
//! a stream label, so that adding or removing one stream never perturbs
//! the others and every experiment is reproducible from its seed alone.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 step: a fast, well-distributed 64-bit mixer.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a 64-bit subseed from `(world_seed, label)`.
pub fn derive_seed(world_seed: u64, label: u64) -> u64 {
    let mut state = world_seed ^ label.wrapping_mul(0xA24B_AED4_963E_E407);
    let a = splitmix64(&mut state);
    let b = splitmix64(&mut state);
    a ^ b.rotate_left(17)
}

/// Constructs the deterministic RNG for `(world_seed, label)`.
pub fn derive_rng(world_seed: u64, label: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(world_seed, label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = derive_rng(42, 7);
        let mut b = derive_rng(42, 7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_labels_different_streams() {
        let mut a = derive_rng(42, 0);
        let mut b = derive_rng(42, 1);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2, "streams should be practically independent");
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = derive_rng(1, 0);
        let mut b = derive_rng(2, 0);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2);
    }

    #[test]
    fn derive_seed_spreads_consecutive_labels() {
        let s0 = derive_seed(9, 0);
        let s1 = derive_seed(9, 1);
        assert_ne!(s0, s1);
        // Hamming distance should be substantial for a good mixer.
        assert!((s0 ^ s1).count_ones() > 8);
    }
}
