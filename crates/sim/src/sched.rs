//! Hierarchical bucketed calendar queue: the engine's event scheduler.
//!
//! The queue keeps near-future events in a power-of-two ring of time
//! slots (each `slot_width` nanoseconds wide) with a hierarchical
//! occupancy bitmap for O(1) next-slot search, and far-future events
//! (beyond one full ring revolution) in an overflow binary heap.
//! Events of the slot under the cursor drain as one *batch*, sorted
//! once by `(at, seq)`, so same-instant events pop in FIFO insertion
//! order without per-event heap rebalancing. Payloads live in a
//! reusable slab with a free list; slot vectors, the batch buffer and
//! the slab all recycle their capacity, so the steady-state
//! push/pop loop performs no allocation.
//!
//! Pop order is exactly ascending `(at, seq)` — byte-identical to the
//! `BinaryHeap<Reverse<(at, seq)>>` scheduler it replaces (the
//! differential suite in `tests/sched_diff.rs` pins this over randomized
//! workloads).
//!
//! # Invariants
//!
//! * `cursor` is slot-aligned and equals the end of the most recently
//!   drained window; it never moves backwards.
//! * Every ring entry's `at` lies in `[cursor - width, cursor + N·width)`
//!   and each slot holds entries of exactly one window (two times within
//!   one revolution can never share a slot index).
//! * Every overflow entry satisfies `at ≥ cursor + N·width` — the
//!   *promotion rule* moves entries out of the heap into the ring
//!   whenever the cursor advances past this bound, so ring order alone
//!   decides the next event.
//! * Pushes earlier than `cursor` (same-window or past-time events, e.g.
//!   zero-delay timers) binary-insert directly into the live batch.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

// AUDIT:HOT-BEGIN — scheduler hot path: no formatting, no string-keyed
// metric lookups, no per-event allocation beyond amortized growth.

/// One scheduled entry: time, global insertion sequence, a caller-owned
/// tag (the engine stores the event's queue-depth class here) and the
/// payload's slab index.
#[derive(Clone, Copy)]
struct Entry {
    at: u64,
    seq: u64,
    tag: u32,
    idx: u32,
}

/// A bucketed calendar queue ordered by `(at, seq)`.
///
/// `seq` is assigned by the caller and must be unique per entry (the
/// engine uses its global event sequence); ties on `at` pop in `seq`
/// order, which is exactly same-instant FIFO.
pub struct CalendarQueue<T> {
    /// Ring of slots; length is a power of two.
    slots: Vec<Vec<Entry>>,
    /// Occupancy bitmap over `slots` (one bit per slot).
    occupied: Vec<u64>,
    /// Entries of the window currently draining, sorted descending by
    /// `(at, seq)` so `pop` is a cheap `Vec::pop` from the back.
    batch: Vec<Entry>,
    /// End of the most recently drained window (slot-aligned). Pushes
    /// before this instant go straight into `batch`.
    cursor: u64,
    /// Far-future events, min-ordered by `(at, seq)`.
    overflow: BinaryHeap<Reverse<(u64, u64, u32, u32)>>,
    /// Payload slab; `Entry::idx` points here.
    slab: Vec<Option<T>>,
    /// Free slab indices available for reuse.
    free: Vec<u32>,
    /// log2 of the slot width in nanoseconds.
    width_shift: u32,
    /// Total entries (ring + batch + overflow).
    len: usize,
    /// Entries currently in ring slots (excludes batch and overflow).
    ring_len: usize,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// Default geometry: 1024 slots of 2²⁰ ns (≈1.05 ms) — a horizon of
    /// ≈1.07 s, sized so millisecond-scale protocol traffic lands in the
    /// ring and only long retry/chaos horizons touch the overflow heap.
    pub fn new() -> Self {
        Self::with_geometry(1024, 20)
    }

    /// Creates a queue with `n_slots` slots (power of two, ≥ 64) of
    /// `2^width_shift` nanoseconds each.
    pub fn with_geometry(n_slots: usize, width_shift: u32) -> Self {
        assert!(n_slots.is_power_of_two() && n_slots >= 64, "slot count");
        assert!(width_shift < 40, "slot width too large");
        CalendarQueue {
            slots: (0..n_slots).map(|_| Vec::new()).collect(),
            occupied: vec![0u64; n_slots / 64],
            batch: Vec::new(),
            cursor: 0,
            overflow: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            width_shift,
            len: 0,
            ring_len: 0,
        }
    }

    /// Total pending entries across batch, slot ring and overflow heap.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no entries are pending anywhere.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Entries currently in the overflow heap (observability/tests).
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    fn width(&self) -> u64 {
        1u64 << self.width_shift
    }

    fn slot_of(&self, at: u64) -> usize {
        ((at >> self.width_shift) as usize) & (self.slots.len() - 1)
    }

    /// `true` if `at` lies within one ring revolution of the cursor.
    fn in_ring(&self, at: u64) -> bool {
        ((at - self.cursor) >> self.width_shift) < self.slots.len() as u64
    }

    fn slab_alloc(&mut self, value: T) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = Some(value);
                i
            }
            None => {
                let i = u32::try_from(self.slab.len()).expect("slab overflow");
                self.slab.push(Some(value));
                i
            }
        }
    }

    fn slab_take(&mut self, i: u32) -> T {
        self.free.push(i);
        self.slab[i as usize].take().expect("slab slot occupied")
    }

    /// Schedules `value` at `at` nanoseconds with insertion sequence
    /// `seq` (unique, caller-assigned) and an opaque `tag` returned by
    /// [`peek`](Self::peek).
    pub fn push(&mut self, at: u64, seq: u64, tag: u32, value: T) {
        let idx = self.slab_alloc(value);
        let e = Entry { at, seq, tag, idx };
        self.len += 1;
        if at < self.cursor {
            // Current (or past) window: insert into the live batch at
            // its descending (at, seq) position.
            let pos = self.batch.partition_point(|x| (x.at, x.seq) > (at, seq));
            self.batch.insert(pos, e);
        } else if self.in_ring(at) {
            let slot = self.slot_of(at);
            self.slots[slot].push(e);
            self.occupied[slot >> 6] |= 1u64 << (slot & 63);
            self.ring_len += 1;
        } else {
            self.overflow.push(Reverse((at, seq, tag, idx)));
        }
    }

    /// Time, sequence and tag of the next entry without removing it.
    /// Advances the cursor to the next occupied window if the live
    /// batch is empty (which never changes pop order).
    pub fn peek(&mut self) -> Option<(u64, u64, u32)> {
        if self.batch.is_empty() {
            self.prepare();
        }
        self.batch.last().map(|e| (e.at, e.seq, e.tag))
    }

    /// Removes and returns the next entry as `(at, seq, value)`.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        if self.batch.is_empty() {
            self.prepare();
        }
        let e = self.batch.pop()?;
        self.len -= 1;
        let value = self.slab_take(e.idx);
        Some((e.at, e.seq, value))
    }

    /// Drains the next occupied window into the batch: jump the cursor
    /// to the overflow minimum if the ring is empty, promote overflow
    /// entries that the advance brought within the horizon, scan the
    /// occupancy bitmap for the next slot, and sort its entries once.
    fn prepare(&mut self) {
        debug_assert!(self.batch.is_empty());
        if self.ring_len == 0 {
            let Some(&Reverse((at, _, _, _))) = self.overflow.peek() else {
                return;
            };
            // Align the cursor down to the minimum's window; promotion
            // below brings (at least) that entry into the ring.
            self.cursor = at & !(self.width() - 1);
            self.promote();
        }
        let start = self.slot_of(self.cursor);
        let rel = self.next_occupied(start);
        let slot = (start + rel) & (self.slots.len() - 1);
        let window_start = self.cursor + ((rel as u64) << self.width_shift);
        // Reuse the batch buffer's capacity by swapping it into the slot.
        std::mem::swap(&mut self.slots[slot], &mut self.batch);
        self.occupied[slot >> 6] &= !(1u64 << (slot & 63));
        self.ring_len -= self.batch.len();
        self.batch
            .sort_unstable_by(|a, b| (b.at, b.seq).cmp(&(a.at, a.seq)));
        debug_assert!(self
            .batch
            .iter()
            .all(|e| e.at >= window_start && e.at - window_start < self.width()));
        self.cursor = window_start + self.width();
        self.promote();
    }

    /// Promotion rule: after every cursor advance, move overflow entries
    /// now within one revolution of the cursor into their ring slots, so
    /// `overflow.min ≥ cursor + N·width` always holds and ring order
    /// alone decides the next event.
    fn promote(&mut self) {
        while let Some(&Reverse((at, _, _, _))) = self.overflow.peek() {
            if !self.in_ring(at) {
                break;
            }
            let Some(Reverse((at, seq, tag, idx))) = self.overflow.pop() else {
                unreachable!()
            };
            let slot = self.slot_of(at);
            self.slots[slot].push(Entry { at, seq, tag, idx });
            self.occupied[slot >> 6] |= 1u64 << (slot & 63);
            self.ring_len += 1;
        }
    }

    /// Offset (0..N) of the first occupied slot at or after `start`,
    /// wrapping around the ring. Requires `ring_len > 0`.
    fn next_occupied(&self, start: usize) -> usize {
        debug_assert!(self.ring_len > 0);
        let n = self.slots.len();
        let nwords = self.occupied.len();
        let start_word = start >> 6;
        for i in 0..=nwords {
            let w = (start_word + i) % nwords;
            let mut bits = self.occupied[w];
            if i == 0 {
                bits &= !0u64 << (start & 63);
            } else if i == nwords {
                bits &= !(!0u64 << (start & 63));
            }
            if bits != 0 {
                let slot = (w << 6) + bits.trailing_zeros() as usize;
                return (slot + n - start) & (n - 1);
            }
        }
        unreachable!("occupancy bitmap empty with ring_len > 0")
    }
}

// AUDIT:HOT-END

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(30, 0, 0, "c");
        q.push(10, 1, 0, "a");
        q.push(10, 2, 0, "a2");
        q.push(20, 3, 0, "b");
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((10, 1, "a")));
        assert_eq!(q.pop(), Some((10, 2, "a2")));
        assert_eq!(q.pop(), Some((20, 3, "b")));
        assert_eq!(q.pop(), Some((30, 0, "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_entries_route_through_overflow_and_back() {
        let mut q = CalendarQueue::with_geometry(64, 10); // horizon 64·1024 ns
        let horizon = 64 * 1024;
        q.push(horizon * 3, 0, 0, "far");
        q.push(5, 1, 0, "near");
        assert_eq!(q.overflow_len(), 1);
        assert_eq!(q.pop(), Some((5, 1, "near")));
        assert_eq!(q.pop(), Some((horizon * 3, 0, "far")));
        assert_eq!(q.overflow_len(), 0);
    }

    #[test]
    fn same_window_push_during_drain_keeps_order() {
        let mut q = CalendarQueue::with_geometry(64, 10);
        q.push(100, 0, 0, 0u32);
        q.push(300, 1, 0, 1);
        assert_eq!(q.pop(), Some((100, 0, 0)));
        // The batch for window [0, 1024) is live; a same-window push
        // must land between the popped entry and the pending one.
        q.push(200, 2, 0, 2);
        q.push(100, 3, 0, 3); // past time: still before 200
        assert_eq!(q.pop(), Some((100, 3, 3)));
        assert_eq!(q.pop(), Some((200, 2, 2)));
        assert_eq!(q.pop(), Some((300, 1, 1)));
    }

    #[test]
    fn peek_matches_pop_and_carries_tag() {
        let mut q = CalendarQueue::new();
        q.push(7, 0, 42, "x");
        assert_eq!(q.peek(), Some((7, 0, 42)));
        assert_eq!(q.pop(), Some((7, 0, "x")));
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn wrapping_windows_never_collide() {
        // Entries more than one revolution apart must not share a slot:
        // the second lands in overflow and is promoted only after the
        // cursor passes its window.
        let mut q = CalendarQueue::with_geometry(64, 10);
        for lap in 0u64..5 {
            q.push(lap * 64 * 1024 + 512, lap, 0, lap);
        }
        assert_eq!(q.overflow_len(), 4);
        for lap in 0u64..5 {
            assert_eq!(q.pop(), Some((lap * 64 * 1024 + 512, lap, lap)));
        }
    }

    #[test]
    fn slab_reuses_slots_after_pop() {
        let mut q = CalendarQueue::new();
        for round in 0u64..10 {
            for i in 0u64..100 {
                q.push(round * 1000 + i, round * 100 + i, 0, i);
            }
            for _ in 0..100 {
                q.pop().unwrap();
            }
        }
        assert!(q.slab.len() <= 100, "slab grew past high-water mark");
    }

    #[test]
    fn interleaved_random_workload_matches_reference_heap() {
        use crate::rng::SplitMix64;
        let mut rng = SplitMix64::seed_from_u64(7);
        let mut q = CalendarQueue::with_geometry(64, 12);
        let mut reference: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for _ in 0..5000 {
            if rng.gen_range(0u32..3) > 0 || reference.is_empty() {
                let at = now + rng.gen_range(0u64..2_000_000);
                q.push(at, seq, 0, at);
                reference.push(Reverse((at, seq)));
                seq += 1;
            } else {
                let Reverse(want) = reference.pop().unwrap();
                let (at, s, v) = q.pop().unwrap();
                assert_eq!((at, s), want);
                assert_eq!(v, at);
                now = at;
            }
        }
        while let Some(Reverse(want)) = reference.pop() {
            let (at, s, _) = q.pop().unwrap();
            assert_eq!((at, s), want);
        }
        assert!(q.is_empty());
    }
}
