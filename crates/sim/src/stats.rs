//! Traffic accounting: the measurement substrate of the paper's Section 6.

use std::collections::BTreeMap;
use std::fmt;

use cmi_obs::{Json, MetricsRegistry, ToJson};

use crate::actor::ActorId;

/// Tag identifying the physical network an actor sits on.
///
/// Section 6's bottleneck argument counts messages *crossing* between
/// networks ("two local area networks connected with a low-speed
/// point-to-point link"); tagging each actor with its network lets the
/// stats separate intra-network traffic from crossings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NetworkTag(pub u16);

impl fmt::Display for NetworkTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net{}", self.0)
    }
}

/// Exact message counts accumulated during a run.
///
/// Counters can be [`reset`](TrafficStats::reset) between phases so that
/// an experiment can, e.g., exclude warm-up traffic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficStats {
    total_messages: u64,
    per_channel: BTreeMap<(ActorId, ActorId), u64>,
    per_crossing: BTreeMap<(NetworkTag, NetworkTag), u64>,
    timer_events: u64,
}

impl TrafficStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        TrafficStats::default()
    }

    pub(crate) fn on_send(
        &mut self,
        from: ActorId,
        to: ActorId,
        from_tag: NetworkTag,
        to_tag: NetworkTag,
    ) {
        self.total_messages += 1;
        *self.per_channel.entry((from, to)).or_insert(0) += 1;
        if from_tag != to_tag {
            *self.per_crossing.entry((from_tag, to_tag)).or_insert(0) += 1;
        }
    }

    pub(crate) fn on_timer(&mut self) {
        self.timer_events += 1;
    }

    /// Total messages sent since the last reset.
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// Messages sent on the channel `from → to` since the last reset.
    pub fn channel_messages(&self, from: ActorId, to: ActorId) -> u64 {
        self.per_channel.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Messages that crossed between two different networks (in either
    /// direction) since the last reset.
    pub fn crossings(&self) -> u64 {
        self.per_crossing.values().sum()
    }

    /// Messages that crossed from network `a` to network `b` (directed).
    pub fn crossings_between(&self, a: NetworkTag, b: NetworkTag) -> u64 {
        self.per_crossing.get(&(a, b)).copied().unwrap_or(0)
    }

    /// Directed crossing table `(from, to) → count`.
    pub fn crossing_table(&self) -> &BTreeMap<(NetworkTag, NetworkTag), u64> {
        &self.per_crossing
    }

    /// Per-channel table `(from, to) → count`.
    pub fn channel_table(&self) -> &BTreeMap<(ActorId, ActorId), u64> {
        &self.per_channel
    }

    /// Timer events fired since the last reset.
    pub fn timer_events(&self) -> u64 {
        self.timer_events
    }

    /// Zeroes all counters (e.g. at the end of a warm-up phase).
    pub fn reset(&mut self) {
        *self = TrafficStats::default();
    }

    /// Folds `other` into `self` (cross-shard aggregation): totals and
    /// timer counts add, the per-channel and per-crossing tables add
    /// entry-wise. Shards key their tables by *global* actor identity,
    /// so merging shard stats reproduces the serial tables exactly.
    pub fn merge(&mut self, other: &TrafficStats) {
        self.total_messages += other.total_messages;
        self.timer_events += other.timer_events;
        for (k, n) in &other.per_channel {
            *self.per_channel.entry(*k).or_insert(0) += n;
        }
        for (k, n) in &other.per_crossing {
            *self.per_crossing.entry(*k).or_insert(0) += n;
        }
    }

    /// Mirrors every counter into `metrics`, under the `traffic.*`,
    /// `channel.*` and `crossing.*` names. Because the registry copy is
    /// derived from this table, the registry's counts match the
    /// closed-form checks (experiment X2) exactly whenever these do.
    pub fn export_into(&self, metrics: &mut MetricsRegistry) {
        metrics.add("traffic.total_messages", self.total_messages);
        metrics.add("traffic.timer_events", self.timer_events);
        metrics.add("traffic.crossings", self.crossings());
        for ((from, to), n) in &self.per_channel {
            metrics.add(&format!("channel.{from}->{to}.messages"), *n);
        }
        for ((a, b), n) in &self.per_crossing {
            metrics.add(&format!("crossing.{a}->{b}.messages"), *n);
        }
    }
}

impl ToJson for TrafficStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("total_messages", self.total_messages.to_json()),
            ("timer_events", self.timer_events.to_json()),
            ("crossings", self.crossings().to_json()),
            (
                "per_channel",
                Json::Obj(
                    self.per_channel
                        .iter()
                        .map(|((f, t), n)| (format!("{f}->{t}"), n.to_json()))
                        .collect(),
                ),
            ),
            (
                "per_crossing",
                Json::Obj(
                    self.per_crossing
                        .iter()
                        .map(|((a, b), n)| (format!("{a}->{b}"), n.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl fmt::Display for TrafficStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "traffic: {} messages, {} crossings, {} timers",
            self.total_messages,
            self.crossings(),
            self.timer_events
        )?;
        for ((a, b), n) in &self.per_crossing {
            writeln!(f, "  {a} → {b}: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_totals_channels_and_crossings() {
        let mut s = TrafficStats::new();
        let (a, b, c) = (ActorId(0), ActorId(1), ActorId(2));
        let (n0, n1) = (NetworkTag(0), NetworkTag(1));
        s.on_send(a, b, n0, n0);
        s.on_send(a, c, n0, n1);
        s.on_send(c, a, n1, n0);
        s.on_send(a, c, n0, n1);
        assert_eq!(s.total_messages(), 4);
        assert_eq!(s.channel_messages(a, c), 2);
        assert_eq!(s.channel_messages(b, a), 0);
        assert_eq!(s.crossings(), 3);
        assert_eq!(s.crossings_between(n0, n1), 2);
        assert_eq!(s.crossings_between(n1, n0), 1);
    }

    #[test]
    fn same_network_sends_are_not_crossings() {
        let mut s = TrafficStats::new();
        s.on_send(ActorId(0), ActorId(1), NetworkTag(3), NetworkTag(3));
        assert_eq!(s.total_messages(), 1);
        assert_eq!(s.crossings(), 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut s = TrafficStats::new();
        s.on_send(ActorId(0), ActorId(1), NetworkTag(0), NetworkTag(1));
        s.on_timer();
        s.reset();
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.crossings(), 0);
        assert_eq!(s.timer_events(), 0);
        assert!(s.channel_table().is_empty());
    }

    #[test]
    fn display_summarizes_counters() {
        let mut s = TrafficStats::new();
        s.on_send(ActorId(0), ActorId(1), NetworkTag(0), NetworkTag(1));
        let text = s.to_string();
        assert!(text.contains("1 messages"));
        assert!(text.contains("net0 → net1: 1"));
    }
}
