//! Run taps: streaming observers of a live simulation.
//!
//! A [`RunTap`] receives the run *as it happens* — memory operations
//! from the protocol actors and causal-lineage events from the engine —
//! instead of reading artifacts after quiescence. The online causal
//! monitor in `cmi-checker` is the canonical tap; test probes are
//! another. Like lineage and tracing, taps follow the zero-cost-when-
//! disabled discipline: when none is installed the engine holds a
//! `None` and the per-event feed is a single branch.

use cmi_obs::LineageEvent;
use cmi_types::OpRecord;

/// A streaming observer of a running simulation.
///
/// Methods must be cheap and must not assume any particular arrival
/// order beyond per-process program order for [`op`](RunTap::op) — the
/// engine feeds lineage events in recording order interleaved at event
/// granularity, and actors feed operations as they apply them.
pub trait RunTap {
    /// A memory operation became visible at its process (applied by a
    /// replica, in the process's program order).
    fn op(&mut self, rec: &OpRecord);

    /// A causal-lineage event was recorded. Default: ignored.
    fn lineage_event(&mut self, _ev: &LineageEvent) {}
}
