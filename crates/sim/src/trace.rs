//! Event trace: entries, and the pluggable sinks that consume them.
//!
//! The engine produces one [`TraceEntry`] per send, delivery, timer and
//! protocol annotation. Two consumers exist:
//!
//! * the in-memory full trace enabled by
//!   [`SimBuilder::enable_trace`](crate::SimBuilder::enable_trace)
//!   (unbounded; used by experiment X1 and `RunReport::trace`), and
//! * any number of [`TraceSink`]s registered with
//!   [`SimBuilder::add_trace_sink`](crate::SimBuilder::add_trace_sink):
//!   a bounded [`RingSink`] keeping the last N entries (drop count
//!   surfaced), a line-oriented [`StderrSink`], and a [`JsonlSink`]
//!   writing one JSON object per line to a file.

use std::any::Any;
use std::fmt;
use std::io::Write;

use cmi_obs::{Json, RingBuffer, ToJson};
use cmi_types::SimTime;

use crate::actor::ActorId;

/// What kind of event a trace entry records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A message was handed to a channel.
    Sent {
        /// Sender.
        from: ActorId,
        /// Receiver.
        to: ActorId,
        /// Scheduled delivery instant.
        delivery: SimTime,
        /// Debug rendering of the message.
        msg: String,
    },
    /// A message was delivered to its receiver.
    Delivered {
        /// Sender.
        from: ActorId,
        /// Receiver.
        to: ActorId,
        /// Debug rendering of the message.
        msg: String,
    },
    /// A timer fired.
    Timer {
        /// Owning actor.
        actor: ActorId,
        /// Token passed at scheduling time.
        token: u64,
    },
    /// A protocol-level annotation emitted with
    /// [`Ctx::note`](crate::Ctx::note).
    Note {
        /// Annotating actor.
        actor: ActorId,
        /// Free-form text.
        text: String,
    },
}

/// One timestamped trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Event payload.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TraceKind::Sent {
                from,
                to,
                delivery,
                msg,
            } => write!(f, "{} {from} ⇒ {to} (arrives {delivery}): {msg}", self.at),
            TraceKind::Delivered { from, to, msg } => {
                write!(f, "{} {to} ⇐ {from}: {msg}", self.at)
            }
            TraceKind::Timer { actor, token } => {
                write!(f, "{} {actor} timer({token})", self.at)
            }
            TraceKind::Note { actor, text } => write!(f, "{} {actor}: {text}", self.at),
        }
    }
}

impl ToJson for TraceEntry {
    fn to_json(&self) -> Json {
        let mut pairs = vec![("at_ns".to_string(), self.at.to_json())];
        let mut put = |k: &str, v: Json| pairs.push((k.to_string(), v));
        match &self.kind {
            TraceKind::Sent {
                from,
                to,
                delivery,
                msg,
            } => {
                put("kind", Json::Str("sent".into()));
                put("from", from.0.to_json());
                put("to", to.0.to_json());
                put("delivery_ns", delivery.to_json());
                put("msg", msg.to_json());
            }
            TraceKind::Delivered { from, to, msg } => {
                put("kind", Json::Str("delivered".into()));
                put("from", from.0.to_json());
                put("to", to.0.to_json());
                put("msg", msg.to_json());
            }
            TraceKind::Timer { actor, token } => {
                put("kind", Json::Str("timer".into()));
                put("actor", actor.0.to_json());
                put("token", token.to_json());
            }
            TraceKind::Note { actor, text } => {
                put("kind", Json::Str("note".into()));
                put("actor", actor.0.to_json());
                put("text", text.to_json());
            }
        }
        Json::Obj(pairs)
    }
}

/// A consumer of trace entries, registered per run.
pub trait TraceSink {
    /// Called once per trace entry, in event order.
    fn record(&mut self, entry: &TraceEntry);

    /// Flushes buffered output (called when a run finishes).
    fn flush(&mut self) {}

    /// Downcast support, so harnesses can recover a concrete sink (e.g.
    /// a [`RingSink`]'s retained entries) after the run.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Bounded in-memory sink: keeps the most recent `capacity` entries and
/// counts how many older ones it dropped.
pub struct RingSink {
    ring: RingBuffer<TraceEntry>,
}

impl RingSink {
    /// A sink retaining the last `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        RingSink {
            ring: RingBuffer::new(capacity),
        }
    }

    /// Retained entries, oldest first.
    pub fn entries(&self) -> Vec<&TraceEntry> {
        self.ring.iter().collect()
    }

    /// Entries evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// JSON rendering: `{"dropped": n, "entries": [...]}`.
    pub fn snapshot(&self) -> Json {
        Json::obj([
            ("dropped", self.ring.dropped().to_json()),
            (
                "entries",
                Json::Arr(self.ring.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, entry: &TraceEntry) {
        self.ring.push(entry.clone());
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Line-oriented sink writing each entry's human rendering to stderr.
#[derive(Default)]
pub struct StderrSink;

impl TraceSink for StderrSink {
    fn record(&mut self, entry: &TraceEntry) {
        eprintln!("{entry}");
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// JSONL sink: one compact JSON object per entry, written to any
/// [`Write`] target (typically a buffered file).
pub struct JsonlSink<W: Write + 'static> {
    out: W,
    errored: bool,
}

impl JsonlSink<std::io::BufWriter<std::fs::File>> {
    /// Creates a JSONL sink writing to the file at `path` (truncated).
    pub fn create(path: &str) -> std::io::Result<Self> {
        Ok(JsonlSink::new(std::io::BufWriter::new(
            std::fs::File::create(path)?,
        )))
    }
}

impl<W: Write + 'static> JsonlSink<W> {
    /// Wraps an arbitrary writer.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            errored: false,
        }
    }

    /// Consumes the sink and returns the writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write + 'static> TraceSink for JsonlSink<W> {
    fn record(&mut self, entry: &TraceEntry) {
        // I/O failure must not abort a deterministic run; note it once.
        if !self.errored && writeln!(self.out, "{}", entry.to_json().to_compact()).is_err() {
            self.errored = true;
            eprintln!("warning: jsonl trace sink stopped writing (I/O error)");
        }
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn note(ms: u64, text: &str) -> TraceEntry {
        TraceEntry {
            at: SimTime::from_millis(ms),
            kind: TraceKind::Note {
                actor: ActorId(2),
                text: text.into(),
            },
        }
    }

    #[test]
    fn entries_render_compactly() {
        assert_eq!(
            note(1, "post_update(x0)").to_string(),
            "t=1ms a2: post_update(x0)"
        );
    }

    #[test]
    fn sent_entries_show_delivery_time() {
        let e = TraceEntry {
            at: SimTime::from_millis(1),
            kind: TraceKind::Sent {
                from: ActorId(0),
                to: ActorId(1),
                delivery: SimTime::from_millis(3),
                msg: "⟨x,v⟩".into(),
            },
        };
        let s = e.to_string();
        assert!(s.contains("a0 ⇒ a1"));
        assert!(s.contains("t=3ms"));
    }

    #[test]
    fn entries_serialize_to_parseable_json() {
        let e = TraceEntry {
            at: SimTime::from_millis(2),
            kind: TraceKind::Timer {
                actor: ActorId(5),
                token: 9,
            },
        };
        let parsed = Json::parse(&e.to_json().to_compact()).unwrap();
        assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("timer"));
        assert_eq!(parsed.get("actor").and_then(Json::as_u64), Some(5));
        assert_eq!(parsed.get("token").and_then(Json::as_u64), Some(9));
        assert_eq!(parsed.get("at_ns").and_then(Json::as_u64), Some(2_000_000));
    }

    #[test]
    fn ring_sink_keeps_tail_and_counts_drops() {
        let mut sink = RingSink::new(2);
        for i in 0..5 {
            sink.record(&note(i, &format!("n{i}")));
        }
        assert_eq!(sink.dropped(), 3);
        let texts: Vec<_> = sink.entries().iter().map(|e| e.to_string()).collect();
        assert_eq!(texts.len(), 2);
        assert!(texts[0].contains("n3") && texts[1].contains("n4"));
        let snap = sink.snapshot();
        assert_eq!(snap.get("dropped").and_then(Json::as_u64), Some(3));
        assert_eq!(
            snap.get("entries")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn jsonl_sink_writes_one_object_per_line() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&note(1, "a"));
        sink.record(&note(2, "b"));
        sink.flush();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(Json::parse(line).is_ok(), "bad line {line}");
        }
    }
}
