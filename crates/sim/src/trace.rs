//! Optional human-readable event trace.
//!
//! When enabled, the engine records one entry per send, delivery, timer
//! and protocol annotation. Experiment X1 uses this to regenerate the
//! paper's Fig. 3 task-interaction diagram as an executable trace.

use std::fmt;

use cmi_types::SimTime;
use serde::{Deserialize, Serialize};

use crate::actor::ActorId;

/// What kind of event a trace entry records.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A message was handed to a channel.
    Sent {
        /// Sender.
        from: ActorId,
        /// Receiver.
        to: ActorId,
        /// Scheduled delivery instant.
        delivery: SimTime,
        /// Debug rendering of the message.
        msg: String,
    },
    /// A message was delivered to its receiver.
    Delivered {
        /// Sender.
        from: ActorId,
        /// Receiver.
        to: ActorId,
        /// Debug rendering of the message.
        msg: String,
    },
    /// A timer fired.
    Timer {
        /// Owning actor.
        actor: ActorId,
        /// Token passed at scheduling time.
        token: u64,
    },
    /// A protocol-level annotation emitted with
    /// [`Ctx::note`](crate::Ctx::note).
    Note {
        /// Annotating actor.
        actor: ActorId,
        /// Free-form text.
        text: String,
    },
}

/// One timestamped trace entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Event payload.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TraceKind::Sent {
                from,
                to,
                delivery,
                msg,
            } => write!(f, "{} {from} ⇒ {to} (arrives {delivery}): {msg}", self.at),
            TraceKind::Delivered { from, to, msg } => {
                write!(f, "{} {to} ⇐ {from}: {msg}", self.at)
            }
            TraceKind::Timer { actor, token } => {
                write!(f, "{} {actor} timer({token})", self.at)
            }
            TraceKind::Note { actor, text } => write!(f, "{} {actor}: {text}", self.at),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_render_compactly() {
        let e = TraceEntry {
            at: SimTime::from_millis(1),
            kind: TraceKind::Note {
                actor: ActorId(2),
                text: "post_update(x0)".into(),
            },
        };
        assert_eq!(e.to_string(), "t=1ms a2: post_update(x0)");
    }

    #[test]
    fn sent_entries_show_delivery_time() {
        let e = TraceEntry {
            at: SimTime::from_millis(1),
            kind: TraceKind::Sent {
                from: ActorId(0),
                to: ActorId(1),
                delivery: SimTime::from_millis(3),
                msg: "⟨x,v⟩".into(),
            },
        };
        let s = e.to_string();
        assert!(s.contains("a0 ⇒ a1"));
        assert!(s.contains("t=3ms"));
    }
}
