//! Source audit of the simulator's event hot path — the landmine
//! discipline from PR 4, extended to the calendar-queue scheduler: every
//! region between `AUDIT:HOT-BEGIN` and `AUDIT:HOT-END` in `engine.rs`
//! and `sched.rs` runs once per event (push, channel resolution, pop,
//! dispatch), so no allocation-heavy formatting and no string-keyed
//! metric lookups may land there. Metric ids must be interned once
//! (`EngineIds`) and used through the `*_id` fast calls; anything that
//! formats belongs outside the markers (e.g. `render_debug`, trace
//! sinks).
//!
//! Unlike the checker's single-region audit, a source file here may hold
//! *several* audited regions — `engine.rs` brackets the send/push path
//! and the dispatch loop separately, with the (cold, allocating)
//! `render_debug` landmine deliberately between them.

use std::path::Path;

/// Extract every `AUDIT:HOT-BEGIN` .. `AUDIT:HOT-END` region of `file`,
/// returning `(region_source, first_line_number)` pairs.
fn hot_regions(file: &str) -> Vec<(String, usize)> {
    let src_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("src").join(file);
    let src = std::fs::read_to_string(&src_path).unwrap_or_else(|e| panic!("read {file}: {e}"));
    let mut regions = Vec::new();
    let mut cursor = 0usize;
    while let Some(rel) = src[cursor..].find("AUDIT:HOT-BEGIN") {
        let marker = cursor + rel;
        // Start after the marker's own comment line — it may name the
        // banned constructs.
        let begin = marker + src[marker..].find('\n').expect("newline after BEGIN") + 1;
        let rel_end = src[begin..]
            .find("AUDIT:HOT-END")
            .unwrap_or_else(|| panic!("{file}: AUDIT:HOT-BEGIN without matching END"));
        let end = begin + rel_end;
        let first_line = src[..begin].lines().count() + 1;
        regions.push((src[begin..end].to_string(), first_line));
        cursor = end + "AUDIT:HOT-END".len();
    }
    assert!(
        !regions.is_empty(),
        "{file} must keep at least one AUDIT:HOT-BEGIN/END region"
    );
    regions
}

#[track_caller]
fn assert_absent(file: &str, region: &str, base: usize, needle: &str, why: &str) {
    for (i, line) in region.lines().enumerate() {
        // Comments may *name* the banned constructs; code may not.
        let code = line.split("//").next().unwrap_or("");
        assert!(
            !code.contains(needle),
            "`{needle}` on the per-event path ({file}:{}): {why}\n  {line}",
            base + i,
        );
    }
}

fn audit_file(file: &str) {
    for (region, base) in hot_regions(file) {
        assert_absent(file, &region, base, "format!", "allocates per event");
        assert_absent(file, &region, base, "to_string", "allocates per event");
        assert_absent(file, &region, base, "String::", "allocates per event");
        // String-keyed registry lookups: the interned-id calls end in `_id`.
        assert_absent(
            file,
            &region,
            base,
            ".key(",
            "metric ids are interned once in EngineIds",
        );
        assert_absent(file, &region, base, ".counter(", "use counter_id");
        assert_absent(file, &region, base, ".inc(", "use inc_id");
        assert_absent(file, &region, base, ".add(", "use add_id");
        assert_absent(file, &region, base, ".set_gauge(", "use set_gauge_id");
        assert_absent(file, &region, base, ".gauge_max(", "use gauge_max_id");
        assert_absent(file, &region, base, ".observe(", "use observe_id");
        // HashMap lookups keyed by (from, to) were the pre-PR-9 channel
        // path; the dense adjacency table replaced them.
        assert_absent(
            file,
            &region,
            base,
            "HashMap",
            "channel lookups go through the dense adjacency table",
        );
    }
}

#[test]
fn engine_event_path_never_formats_or_resolves_metric_names() {
    audit_file("engine.rs");
}

#[test]
fn scheduler_never_formats_or_resolves_metric_names() {
    audit_file("sched.rs");
}

#[test]
fn audited_regions_cover_the_event_entry_points() {
    let engine: String = hot_regions("engine.rs")
        .into_iter()
        .map(|(r, _)| r)
        .collect();
    for must_have in ["fn push", "fn channel_index", "fn send", "fn count_send"] {
        assert!(
            engine.contains(must_have),
            "`{must_have}` moved outside the audited engine regions — move the marker with it"
        );
    }
    assert!(
        engine.contains("loop {"),
        "the dispatch loop moved outside the audited engine regions"
    );

    let sched: String = hot_regions("sched.rs")
        .into_iter()
        .map(|(r, _)| r)
        .collect();
    for must_have in ["fn push", "fn pop", "fn peek", "fn prepare", "fn promote"] {
        assert!(
            sched.contains(must_have),
            "`{must_have}` moved outside the audited sched region — move the marker with it"
        );
    }
}

#[test]
fn engine_keeps_the_cold_debug_landmine_outside_the_regions() {
    // `render_debug` is the deliberate allocating landmine between the
    // two engine regions: it must exist, and must NOT be audited (it
    // formats by design, and the audit would fail if it slipped inside).
    let src_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("src/engine.rs");
    let src = std::fs::read_to_string(src_path).expect("read engine.rs");
    assert!(
        src.contains("fn render_debug"),
        "the render_debug landmine disappeared from engine.rs"
    );
    let audited: String = hot_regions("engine.rs")
        .into_iter()
        .map(|(r, _)| r)
        .collect();
    assert!(
        !audited.contains("fn render_debug"),
        "render_debug is allocating by design and must stay outside AUDIT regions"
    );
}
