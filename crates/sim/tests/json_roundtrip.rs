//! Randomized round-trip tests for the in-tree JSON model
//! (`cmi-obs::json`), driven by seeded [`SplitMix64`] streams like the
//! simulator's own property tests: every failure reproduces from its
//! printed seed. The generator deliberately stresses the corners the
//! artifact pipeline depends on — deep nesting, every escape class,
//! astral-plane characters (surrogate pairs on the wire) and the full
//! zoo of number spellings.

use cmi_obs::Json;
use cmi_sim::SplitMix64;

/// A printable-but-hostile string: plain ASCII, the short escapes,
/// raw control characters, BMP and astral-plane code points.
fn gen_string(rng: &mut SplitMix64) -> String {
    let len = rng.gen_range(0..12usize);
    let mut s = String::new();
    for _ in 0..len {
        match rng.gen_range(0..8u32) {
            0 => s.push(rng.gen_range(32u32..127).try_into().unwrap()),
            1 => s.push(['"', '\\', '/'][rng.gen_range(0..3usize)]),
            2 => s.push(['\n', '\t', '\r', '\u{8}', '\u{c}'][rng.gen_range(0..5usize)]),
            // Raw control characters must be emitted as \u00XX.
            3 => s.push(char::from_u32(rng.gen_range(1u32..32)).unwrap()),
            // BMP, skipping the surrogate range.
            4 | 5 => {
                let c = rng.gen_range(0x80u32..0xD800);
                s.push(char::from_u32(c).unwrap());
            }
            // Astral plane: serialized as a \uXXXX\uXXXX surrogate pair.
            6 => {
                let c = rng.gen_range(0x1_0000u32..0x11_0000);
                if let Some(c) = char::from_u32(c) {
                    s.push(c);
                }
            }
            _ => s.push('é'),
        }
    }
    s
}

/// A finite number in one of the spellings the grammar admits: small
/// and huge integers, fractions, and positive/negative exponents.
fn gen_number(rng: &mut SplitMix64) -> f64 {
    let sign = if rng.gen_bool(0.5) { -1.0 } else { 1.0 };
    sign * match rng.gen_range(0..5u32) {
        0 => rng.gen_range(0u32..1000) as f64,
        1 => (rng.next_u64() >> 11) as f64, // up to 2^53, integral
        2 => rng.next_f64(),
        3 => rng.next_f64() * 10f64.powi(rng.gen_range(0u32..616) as i32 - 308),
        _ => rng.gen_range(0u32..100) as f64 + 0.5,
    }
}

fn gen_value(rng: &mut SplitMix64, depth: usize) -> Json {
    let top = if depth == 0 { 4 } else { 6 };
    match rng.gen_range(0..top as u32) {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_bool(0.5)),
        2 => Json::Num(gen_number(rng)),
        3 => Json::Str(gen_string(rng)),
        4 => {
            let n = rng.gen_range(0..4usize);
            Json::Arr((0..n).map(|_| gen_value(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0..4usize);
            Json::Obj(
                (0..n)
                    .map(|i| {
                        (
                            format!("{}#{i}", gen_string(rng)),
                            gen_value(rng, depth - 1),
                        )
                    })
                    .collect(),
            )
        }
    }
}

#[test]
fn randomized_values_round_trip_through_both_renderings() {
    for seed in 0..300u64 {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let value = gen_value(&mut rng, 5);
        let compact = value.to_compact();
        assert_eq!(
            Json::parse(&compact).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{compact}")),
            value,
            "seed {seed}: compact round trip"
        );
        let pretty = value.to_pretty();
        assert_eq!(
            Json::parse(&pretty).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{pretty}")),
            value,
            "seed {seed}: pretty round trip"
        );
    }
}

#[test]
fn deep_nesting_round_trips_up_to_the_parser_limit() {
    // 127 wrappers + the innermost scalar stays within MAX_DEPTH = 128.
    let mut value = Json::Num(1.0);
    for _ in 0..127 {
        value = Json::Arr(vec![value]);
    }
    let text = value.to_compact();
    assert_eq!(Json::parse(&text).expect("within the depth limit"), value);

    // Past the limit the parser must reject, not blow the stack.
    let hostile = format!("{}1{}", "[".repeat(4096), "]".repeat(4096));
    assert!(Json::parse(&hostile).is_err());
}

#[test]
fn surrogate_pairs_and_escapes_parse_to_the_right_scalars() {
    // 😀 is U+1F600, spelled as the escaped surrogate pair D83D/DE00.
    let parsed = Json::parse(r#""😀 ok é\n""#).unwrap();
    assert_eq!(parsed, Json::Str("\u{1F600} ok é\n".into()));
    // Writer → parser: the same character survives our own escaping.
    let s = Json::Str("\u{1F600}\"\\\u{1}".into());
    assert_eq!(Json::parse(&s.to_compact()).unwrap(), s);
    assert_eq!(
        Json::parse(r#""\ud83d\ude00""#).unwrap(),
        Json::Str("\u{1F600}".into())
    );
    // A lone high surrogate is malformed.
    assert!(Json::parse(r#""\ud83d""#).is_err());
}

#[test]
fn exponent_spellings_all_parse() {
    for (text, want) in [
        ("1e3", 1000.0),
        ("1E3", 1000.0),
        ("1e+3", 1000.0),
        ("-2.5e-4", -0.00025),
        ("9007199254740993e0", 9_007_199_254_740_992.0), // rounds to nearest f64
        ("0.0", 0.0),
        ("-0", 0.0),
        ("1.25E-300", 1.25e-300),
    ] {
        let parsed = Json::parse(text).unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(parsed.as_f64(), Some(want), "{text}");
    }
}

#[test]
fn randomized_numbers_survive_reserialization_exactly() {
    let mut rng = SplitMix64::seed_from_u64(42);
    for i in 0..2000 {
        let n = gen_number(&mut rng);
        let text = Json::Num(n).to_compact();
        let back = Json::parse(&text)
            .unwrap_or_else(|e| panic!("case {i}: {e}\n{text}"))
            .as_f64()
            .expect("number");
        assert_eq!(back, n, "case {i}: {text}");
    }
}
