//! Randomized-property tests for the simulator: FIFO delivery under
//! arbitrary jitter and availability schedules, and bit-exact
//! determinism. Cases are generated from seeded in-tree [`SplitMix64`]
//! streams, so every failure reproduces from its printed seed.

use std::any::Any;
use std::time::Duration;

use cmi_sim::{
    Actor, ActorId, Availability, ChannelSpec, Ctx, NetworkTag, RunLimit, SimBuilder, SplitMix64,
};
use cmi_types::SimTime;

/// Sends `count` numbered messages at randomized issue times.
struct Burst {
    peer: ActorId,
    sends: Vec<u64>, // delays in µs; message payload = index
}

impl Actor<u32> for Burst {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
        for (i, &delay) in self.sends.iter().enumerate() {
            ctx.schedule(Duration::from_micros(delay), i as u64);
        }
    }

    fn on_message(&mut self, _from: ActorId, _msg: u32, _ctx: &mut Ctx<'_, u32>) {}

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_, u32>) {
        ctx.send(self.peer, token as u32);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[derive(Default)]
struct Sink {
    got: Vec<u32>,
}

impl Actor<u32> for Sink {
    fn on_message(&mut self, _from: ActorId, msg: u32, _ctx: &mut Ctx<'_, u32>) {
        self.got.push(msg);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn availability(rng: &mut SplitMix64) -> Availability {
    match rng.gen_range(0u32..3) {
        0 => Availability::AlwaysUp,
        1 => Availability::UpFrom(SimTime::from_millis(rng.gen_range(1u64..50))),
        _ => {
            let period = rng.gen_range(1u64..20);
            let up = rng.gen_range(1u64..10);
            Availability::DutyCycle {
                period: Duration::from_millis(period + up),
                up: Duration::from_millis(up),
            }
        }
    }
}

fn send_delays(rng: &mut SplitMix64, max_len: usize, bound: u64) -> Vec<u64> {
    let n = rng.gen_range(1..max_len);
    (0..n).map(|_| rng.gen_range(0..bound)).collect()
}

fn run_burst(
    sends: Vec<u64>,
    delay_us: u64,
    jitter_us: u64,
    avail: Availability,
    seed: u64,
) -> (Vec<u32>, SimTime) {
    // Timer ties: issue order of equal-time sends follows token insertion,
    // which matches index order only if delays are sorted — so sort and
    // dedup to make "send order" well-defined for the FIFO assertion.
    let mut sends = sends;
    sends.sort();
    sends.dedup();
    let n = sends.len();
    let mut b = SimBuilder::new(seed);
    let sink_id = ActorId(1);
    let a0 = b.add_actor(
        Box::new(Burst {
            peer: sink_id,
            sends,
        }),
        NetworkTag(0),
    );
    let a1 = b.add_actor(Box::new(Sink::default()), NetworkTag(1));
    let spec = ChannelSpec::jittered(
        Duration::from_micros(delay_us),
        Duration::from_micros(jitter_us),
    )
    .with_availability(avail);
    b.connect(a0, a1, spec);
    let mut sim = b.build();
    let outcome = sim.run(RunLimit::unlimited());
    assert!(outcome.is_quiescent());
    let got = sim.actor::<Sink>(a1).unwrap().got.clone();
    assert_eq!(got.len(), n, "reliable channel loses nothing");
    (got, sim.now())
}

#[test]
fn fifo_order_holds_under_jitter_and_outages() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::seed_from_u64(case);
        let sends = send_delays(&mut rng, 40, 5_000);
        let delay_us = rng.gen_range(1u64..2_000);
        let jitter_us = rng.gen_range(1u64..5_000);
        let avail = availability(&mut rng);
        let seed = rng.gen_range(0u64..1_000);
        let (got, _) = run_burst(sends, delay_us, jitter_us, avail, seed);
        let mut sorted = got.clone();
        sorted.sort();
        assert_eq!(got, sorted, "delivery must follow send order (case {case})");
    }
}

#[test]
fn runs_are_deterministic_per_seed() {
    for case in 0..64u64 {
        let mut rng = SplitMix64::seed_from_u64(0x5EED ^ case);
        let sends = send_delays(&mut rng, 20, 2_000);
        let jitter_us = rng.gen_range(1u64..3_000);
        let seed = rng.gen_range(0u64..1_000);
        let a = run_burst(sends.clone(), 100, jitter_us, Availability::AlwaysUp, seed);
        let b = run_burst(sends, 100, jitter_us, Availability::AlwaysUp, seed);
        assert_eq!(a, b, "case {case}");
    }
}

#[test]
fn availability_never_delivers_during_downtime() {
    for case in 0..256u64 {
        let mut rng = SplitMix64::seed_from_u64(0xD0DA ^ case);
        let period_ms = rng.gen_range(2u64..30);
        let up_ms = rng.gen_range(1u64..2);
        let t_ms = rng.gen_range(0u64..200);
        let avail = Availability::DutyCycle {
            period: Duration::from_millis(period_ms + up_ms),
            up: Duration::from_millis(up_ms),
        };
        let t = SimTime::from_millis(t_ms);
        let start = avail.next_transmit(t);
        assert!(start >= t, "case {case}");
        assert!(
            avail.is_up(start),
            "transmission must start in an up window (case {case})"
        );
    }
}
