//! Pinning tests for `engine.queue_depth_max` accounting after PR 9.
//!
//! The gauge used to read `queue.len()` — the total over the single
//! global heap. Two things changed underneath it:
//!
//! * the calendar queue splits pending events across a slot ring, a
//!   live batch and an overflow heap — the depth must still count ALL
//!   of them, wherever they sit;
//! * the sharded engine runs disjoint components in separate worlds,
//!   where a per-world total would depend on the shard count. Depth is
//!   therefore accounted **per depth class** (one class per connected
//!   component) and the gauge records the max class depth — a quantity
//!   that is identical whether the components share one queue or run
//!   on separate shards (`MetricsRegistry::merge` folds gauges by max).

use std::any::Any;
use std::time::Duration;

use cmi_sim::{Actor, ActorId, Ctx, NetworkTag, RunLimit, SimBuilder};

/// Schedules `near` timers at +1 ms and `far` timers at +2 s (beyond
/// the default ring horizon of ~1.07 s, so they land in the overflow
/// heap), then ignores everything.
struct Burst {
    near: u32,
    far: u32,
}

impl Actor<()> for Burst {
    fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
        for i in 0..self.near {
            ctx.schedule(Duration::from_millis(1), u64::from(i));
        }
        for i in 0..self.far {
            ctx.schedule(Duration::from_secs(2), u64::from(1000 + i));
        }
    }

    fn on_message(&mut self, _from: ActorId, _msg: (), _ctx: &mut Ctx<'_, ()>) {}

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn depth_after_run(bursts: &[(u32, u32)], classes: Option<Vec<u32>>) -> f64 {
    let mut b = SimBuilder::new(1);
    for &(near, far) in bursts {
        b.add_actor(Box::new(Burst { near, far }), NetworkTag(0));
    }
    if let Some(classes) = classes {
        b.set_depth_classes(classes);
    }
    let mut sim = b.build();
    sim.run(RunLimit::unlimited());
    sim.metrics()
        .gauge("engine.queue_depth_max")
        .expect("depth gauge recorded")
}

#[test]
fn depth_counts_ring_and_overflow_together() {
    // 6 near-future (slot ring) + 6 far-future (overflow heap) events
    // pending at the first pop: the gauge must see all 12, not just the
    // ring's share.
    assert_eq!(depth_after_run(&[(6, 6)], None), 12.0);
}

#[test]
fn single_class_depth_is_the_total_queue_depth() {
    // Default classing (everything in class 0) preserves the pre-PR-9
    // meaning: the max total number of pending events.
    assert_eq!(depth_after_run(&[(10, 0), (4, 0)], None), 14.0);
}

#[test]
fn per_class_depth_is_the_max_class_not_the_sum() {
    // Two classes — as built for two disjoint components. 10 + 4 events
    // are pending simultaneously, but the gauge records the heaviest
    // CLASS (10): that is the value a sharded run reproduces exactly,
    // since each shard only ever sees its own class and the merge folds
    // gauges by max. A total (14) would depend on the shard count.
    assert_eq!(depth_after_run(&[(10, 0), (4, 0)], Some(vec![0, 1])), 10.0);
    // Symmetric: the heavier class may come second.
    assert_eq!(depth_after_run(&[(4, 0), (10, 4)], Some(vec![0, 1])), 14.0);
}
