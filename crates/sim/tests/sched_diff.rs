//! Differential honesty harness for the calendar-queue scheduler.
//!
//! PR 9 replaced the engine's `BinaryHeap<QueuedEvent>` with
//! [`cmi_sim::CalendarQueue`]. The pop order contract is unchanged —
//! strictly `(at, seq)` ascending, i.e. time order with FIFO insertion
//! order breaking ties — so byte-identical replay of every committed
//! experiment hinges on the two structures agreeing on *every* workload,
//! not just the unit-test shapes. This suite drives ≥1000 seeded random
//! workloads through both a reference `BinaryHeap<Reverse<(at, seq)>>`
//! and the calendar queue, mixing the regimes that stress each internal
//! path:
//!
//! * same-instant bursts (slot batches drained in `seq` order),
//! * far-future spikes (overflow heap routing and promotion),
//! * zero-delay pushes at the cursor (live-batch binary insertion),
//! * interleaved pops, including draining to empty and refilling
//!   (empty-ring cursor jumps).

use cmi_sim::rng::derive_rng;
use cmi_sim::CalendarQueue;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Drive one seeded workload through both queues, asserting lock-step
/// agreement on every pop and on the final drain.
fn differential_run(seed: u64, ops: usize) {
    let mut rng = derive_rng(seed, 0xd1ff);
    let mut cq: CalendarQueue<u64> = CalendarQueue::new();
    let mut reference: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut seq: u64 = 0;
    // `now` tracks the largest popped timestamp: pushes must never go
    // backwards past it, matching the engine's monotonic clock.
    let mut now: u64 = 0;
    let mut popped = 0u64;

    for _ in 0..ops {
        match rng.gen_range(0u32..10) {
            // Same-instant burst: several entries at one timestamp, so
            // the slot batch must preserve seq order.
            0 | 1 => {
                let at = now + rng.gen_range(0u64..2_000_000);
                for _ in 0..rng.gen_range(2usize..6) {
                    cq.push(at, seq, 0, seq);
                    reference.push(Reverse((at, seq)));
                    seq += 1;
                }
            }
            // Far-future spike: beyond the default ring horizon
            // (1024 slots × 2^20 ns ≈ 1.07 s), forcing overflow.
            2 => {
                let at = now + 2_000_000_000 + rng.gen_range(0u64..8_000_000_000);
                cq.push(at, seq, 0, seq);
                reference.push(Reverse((at, seq)));
                seq += 1;
            }
            // Zero-delay push at the current instant (live batch).
            3 => {
                cq.push(now, seq, 0, seq);
                reference.push(Reverse((now, seq)));
                seq += 1;
            }
            // Near-future push inside the ring.
            4 | 5 | 6 => {
                let at = now + rng.gen_range(0u64..500_000_000);
                cq.push(at, seq, 0, seq);
                reference.push(Reverse((at, seq)));
                seq += 1;
            }
            // Pop a few — possibly draining to empty, which exercises
            // the empty-ring cursor jump on the next push.
            _ => {
                for _ in 0..rng.gen_range(1usize..8) {
                    let got = cq.pop();
                    let want = reference.pop();
                    match (got, want) {
                        (None, None) => break,
                        (Some((at, s, v)), Some(Reverse((rat, rs)))) => {
                            assert_eq!((at, s), (rat, rs), "seed {seed}: pop #{popped} diverged");
                            assert_eq!(v, s, "seed {seed}: payload slab corrupted");
                            now = at;
                            popped += 1;
                        }
                        (got, want) => {
                            panic!("seed {seed}: emptiness diverged: {got:?} vs {want:?}")
                        }
                    }
                }
            }
        }
        assert_eq!(cq.len(), reference.len(), "seed {seed}: length diverged");
    }

    // Full drain: remaining order must match exactly.
    while let Some(Reverse((rat, rs))) = reference.pop() {
        let (at, s, v) = cq
            .pop()
            .unwrap_or_else(|| panic!("seed {seed}: calendar queue ran dry before the reference"));
        assert_eq!((at, s), (rat, rs), "seed {seed}: drain diverged");
        assert_eq!(v, s, "seed {seed}: payload slab corrupted during drain");
    }
    assert!(
        cq.is_empty(),
        "seed {seed}: calendar queue kept stale entries"
    );
}

#[test]
fn thousand_seeded_workloads_match_reference_heap() {
    // ≥1000 seeds, moderate length each: covers slot wrap-around,
    // overflow promotion and live-batch insertion across many random
    // interleavings while staying fast enough for tier-1.
    for seed in 0..1024u64 {
        differential_run(seed, 160);
    }
}

#[test]
fn long_workloads_cross_many_ring_revolutions() {
    // Fewer seeds, much longer runs: the ring wraps dozens of times and
    // the overflow heap repeatedly promotes into freshly-cleared slots.
    for seed in 0..16u64 {
        differential_run(0x5000 + seed, 6_000);
    }
}

#[test]
fn one_revolution_boundary_routes_exactly() {
    // Pin the overflow boundary: with the cursor at 0, an event at
    // exactly `N·width` (one full ring revolution ahead) must route to
    // the overflow heap — the ring invariant reserves slot indices for
    // `[cursor, cursor + N·width)` only, and an entry at `N·width`
    // would alias slot 0 of the *current* window. `N·width − 1` is the
    // last ring-resident instant; `N·width + 1` is overflow like its
    // neighbor. All three must still pop in exact `(at, seq)` order,
    // and the boundary entries must promote back into the ring once
    // the cursor's advance brings their window inside the horizon.
    let n: u64 = 64;
    let shift: u32 = 24;
    let horizon = n << shift; // cursor starts at 0
    let mut cq: CalendarQueue<u64> = CalendarQueue::with_geometry(n as usize, shift);
    cq.push(horizon - 1, 0, 0, 0);
    cq.push(horizon, 1, 0, 1);
    cq.push(horizon + 1, 2, 0, 2);
    assert_eq!(
        cq.overflow_len(),
        2,
        "exactly the at ≥ horizon entries belong to overflow"
    );
    // An anchor in slot 0 of the current window: if `horizon` had been
    // ringed it would share this slot and pop interleaved/misordered.
    cq.push(1, 3, 0, 3);
    assert_eq!(cq.pop(), Some((1, 3, 3)));
    assert_eq!(cq.pop(), Some((horizon - 1, 0, 0)));
    assert_eq!(cq.pop(), Some((horizon, 1, 1)));
    assert_eq!(cq.pop(), Some((horizon + 1, 2, 2)));
    assert_eq!(cq.overflow_len(), 0, "boundary entries were promoted");
    assert!(cq.is_empty());

    // Same boundary relative to a non-zero cursor: drain one window
    // first so the cursor sits mid-ring, then place an entry exactly
    // one revolution past it.
    let mut cq: CalendarQueue<u64> = CalendarQueue::with_geometry(n as usize, shift);
    let width = 1u64 << shift;
    cq.push(5 * width + 7, 0, 0, 0);
    assert_eq!(cq.pop(), Some((5 * width + 7, 0, 0))); // cursor → 6·width
    let cursor = 6 * width;
    cq.push(cursor + horizon - 1, 1, 0, 1);
    cq.push(cursor + horizon, 2, 0, 2);
    assert_eq!(cq.overflow_len(), 1, "cursor-relative boundary drifted");
    assert_eq!(cq.pop(), Some((cursor + horizon - 1, 1, 1)));
    assert_eq!(cq.pop(), Some((cursor + horizon, 2, 2)));
    assert!(cq.is_empty());
}

#[test]
fn adversarial_geometry_small_ring() {
    // A tiny 64-slot ring with wide 2^24 ns buckets forces constant
    // overflow traffic and promotion on nearly every window advance.
    for seed in 0..64u64 {
        let mut rng = derive_rng(0x9e0_0000 + seed, 1);
        let mut cq: CalendarQueue<u64> = CalendarQueue::with_geometry(64, 24);
        let mut reference: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut now = 0u64;
        for s in 0..4_000u64 {
            let at = now + rng.gen_range(0u64..40_000_000_000);
            cq.push(at, s, 0, s);
            reference.push(Reverse((at, s)));
            if rng.gen_bool(0.6) {
                if let Some(Reverse((rat, rs))) = reference.pop() {
                    let (gat, gs, _) = cq.pop().expect("non-empty");
                    assert_eq!((gat, gs), (rat, rs), "seed {seed} step {s}");
                    now = gat;
                }
            }
        }
        while let Some(Reverse((rat, rs))) = reference.pop() {
            let (gat, gs, _) = cq.pop().expect("drain");
            assert_eq!((gat, gs), (rat, rs), "seed {seed} drain");
        }
        assert!(cq.is_empty());
    }
}
