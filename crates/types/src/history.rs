//! Computations (histories) of a DSM execution.
//!
//! A [`History`] is the paper's *computation* `α^q`: the sequence of read
//! and write operations observed in some execution of a system (or of the
//! interconnected system `S^T`). The insertion order of records is the
//! observation order; the per-process subsequences give the program order
//! `→^{α}` of Definition 2(1).

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use crate::ids::{OpId, ProcId, VarId};
use crate::op::{OpKind, OpRecord};
use crate::value::Value;

/// Why a history fails the paper's differentiated-history assumption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DifferentiatedError {
    /// The same value was written twice to the same variable — the paper
    /// assumes "a given value is written at most once in any given
    /// variable".
    DuplicateWrite {
        /// Variable written.
        var: VarId,
        /// Value written twice.
        value: Value,
        /// First write of the pair.
        first: OpId,
        /// Second write of the pair.
        second: OpId,
    },
}

impl fmt::Display for DifferentiatedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DifferentiatedError::DuplicateWrite {
                var,
                value,
                first,
                second,
            } => write!(
                f,
                "value {value} written twice to {var} (by {first} and {second})"
            ),
        }
    }
}

impl std::error::Error for DifferentiatedError {}

/// Where a read operation got its value from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadSource {
    /// The read returned the initial value `⊥`.
    Initial,
    /// The read returned the value written by this write operation.
    Write(OpId),
    /// The read returned a value that no write in the history produced —
    /// a "thin-air" read, always a consistency violation.
    ThinAir,
}

/// The projection `α_i^q` of a history for one process: all write
/// operations of the history plus the read operations of process `i`
/// (Section 2 of the paper: "the computation obtained by removing from
/// `α^q` all read operations from processes other than `i`").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessProjection {
    /// The process whose reads are retained.
    pub proc: ProcId,
    /// Operation ids, in the observation order of the parent history.
    pub ops: Vec<OpId>,
}

/// A computation: an ordered sequence of recorded memory operations.
///
/// # Example
///
/// ```
/// use cmi_types::{History, OpRecord, ProcId, SimTime, SystemId, Value, VarId};
///
/// let p = ProcId::new(SystemId(0), 0);
/// let q = ProcId::new(SystemId(0), 1);
/// let x = VarId(0);
/// let v = Value::new(p, 1);
///
/// let mut h = History::new();
/// let w = h.record(OpRecord::write(p, x, v, SimTime::from_nanos(1)));
/// let r = h.record(OpRecord::read(q, x, Some(v), SimTime::from_nanos(2)));
/// assert_eq!(h.reads_from()[r.index()], Some(cmi_types::history::ReadSource::Write(w)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct History {
    records: Vec<OpRecord>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Appends a record, assigning and returning its dense [`OpId`].
    ///
    /// Records must be appended in observation order; the per-process
    /// subsequences of that order are taken as program order.
    pub fn record(&mut self, mut rec: OpRecord) -> OpId {
        let id = OpId(self.records.len() as u64);
        rec.id = id;
        self.records.push(rec);
        id
    }

    /// Number of operations recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no operation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this history.
    pub fn op(&self, id: OpId) -> &OpRecord {
        &self.records[id.index()]
    }

    /// All records in observation order.
    pub fn iter(&self) -> impl Iterator<Item = &OpRecord> {
        self.records.iter()
    }

    /// All records as a slice.
    pub fn as_slice(&self) -> &[OpRecord] {
        &self.records
    }

    /// The set of processes that issued at least one operation.
    pub fn procs(&self) -> BTreeSet<ProcId> {
        self.records.iter().map(|r| r.proc).collect()
    }

    /// The set of variables touched by at least one operation.
    pub fn vars(&self) -> BTreeSet<VarId> {
        self.records.iter().map(|r| r.var).collect()
    }

    /// Operation ids of `proc`, in program order.
    pub fn ops_of(&self, proc: ProcId) -> Vec<OpId> {
        self.records
            .iter()
            .filter(|r| r.proc == proc)
            .map(|r| r.id)
            .collect()
    }

    /// Ids of all write operations, in observation order.
    pub fn writes(&self) -> Vec<OpId> {
        self.records
            .iter()
            .filter(|r| r.kind.is_write())
            .map(|r| r.id)
            .collect()
    }

    /// Ids of all read operations, in observation order.
    pub fn reads(&self) -> Vec<OpId> {
        self.records
            .iter()
            .filter(|r| r.kind.is_read())
            .map(|r| r.id)
            .collect()
    }

    /// The projection `α_i`: all writes plus the reads of `proc`
    /// (Section 2; input to Definitions 3–4).
    pub fn project_for(&self, proc: ProcId) -> ProcessProjection {
        let ops = self
            .records
            .iter()
            .filter(|r| r.kind.is_write() || r.proc == proc)
            .map(|r| r.id)
            .collect();
        ProcessProjection { proc, ops }
    }

    /// A new, independent history containing only the records accepted by
    /// `keep`, with freshly assigned dense ids (observation order is
    /// preserved).
    ///
    /// Used to form per-system computations `α^k` and the interconnected
    /// computation `α^T` (which excludes IS-process operations) from one
    /// world-wide recording.
    pub fn filtered(&self, mut keep: impl FnMut(&OpRecord) -> bool) -> History {
        let mut out = History::new();
        for r in &self.records {
            if keep(r) {
                out.record(*r);
            }
        }
        out
    }

    /// Checks the paper's assumption that each value is written at most
    /// once per variable.
    ///
    /// # Errors
    ///
    /// Returns the first [`DifferentiatedError::DuplicateWrite`] found.
    pub fn validate_differentiated(&self) -> Result<(), DifferentiatedError> {
        let mut seen: HashMap<(VarId, Value), OpId> = HashMap::new();
        for r in &self.records {
            if let OpKind::Write { value } = r.kind {
                if let Some(&first) = seen.get(&(r.var, value)) {
                    return Err(DifferentiatedError::DuplicateWrite {
                        var: r.var,
                        value,
                        first,
                        second: r.id,
                    });
                }
                seen.insert((r.var, value), r.id);
            }
        }
        Ok(())
    }

    /// Resolves, for every operation, where its value came from: entry `i`
    /// is `Some(source)` if operation `i` is a read, `None` if it is a
    /// write.
    ///
    /// Requires a differentiated history for the result to be meaningful
    /// (duplicate writes resolve to the first writer).
    pub fn reads_from(&self) -> Vec<Option<ReadSource>> {
        let mut writer_of: HashMap<(VarId, Value), OpId> = HashMap::new();
        for r in &self.records {
            if let OpKind::Write { value } = r.kind {
                writer_of.entry((r.var, value)).or_insert(r.id);
            }
        }
        self.records
            .iter()
            .map(|r| match r.kind {
                OpKind::Write { .. } => None,
                OpKind::Read { value: None } => Some(ReadSource::Initial),
                OpKind::Read { value: Some(v) } => Some(
                    writer_of
                        .get(&(r.var, v))
                        .map(|&w| ReadSource::Write(w))
                        .unwrap_or(ReadSource::ThinAir),
                ),
            })
            .collect()
    }

    /// Groups operation ids by issuing process, each in program order.
    pub fn by_process(&self) -> BTreeMap<ProcId, Vec<OpId>> {
        let mut map: BTreeMap<ProcId, Vec<OpId>> = BTreeMap::new();
        for r in &self.records {
            map.entry(r.proc).or_default().push(r.id);
        }
        map
    }

    /// Merges per-process recording streams into one observation-ordered
    /// computation.
    ///
    /// Each stream must be in its own recording order (which the hosts
    /// guarantee: completion times never decrease within one process).
    /// Records are interleaved by completion time; ties are broken by
    /// stream index, then by position within the stream, so program
    /// order is preserved and the merge is deterministic. This is the
    /// extraction step every simulation harness ends with.
    ///
    /// # Example
    ///
    /// ```
    /// use cmi_types::{History, OpRecord, ProcId, SimTime, SystemId, Value, VarId};
    ///
    /// let p0 = ProcId::new(SystemId(0), 0);
    /// let p1 = ProcId::new(SystemId(0), 1);
    /// let v = Value::new(p0, 1);
    /// let h = History::merge_streams(vec![
    ///     vec![OpRecord::write(p0, VarId(0), v, SimTime::from_millis(1))],
    ///     vec![OpRecord::read(p1, VarId(0), Some(v), SimTime::from_millis(2))],
    /// ]);
    /// assert_eq!(h.len(), 2);
    /// assert!(h.op(cmi_types::OpId(0)).kind.is_write());
    /// ```
    pub fn merge_streams(streams: Vec<Vec<OpRecord>>) -> History {
        let mut all: Vec<(crate::SimTime, usize, usize, OpRecord)> = Vec::new();
        for (k, stream) in streams.into_iter().enumerate() {
            for (i, op) in stream.into_iter().enumerate() {
                all.push((op.at, k, i, op));
            }
        }
        all.sort_by_key(|(at, k, i, _)| (*at, *k, *i));
        all.into_iter().map(|(_, _, _, op)| op).collect()
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "history of {} ops:", self.len())?;
        for r in &self.records {
            writeln!(f, "  {} {} {}", r.id, r.at, r)?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a History {
    type Item = &'a OpRecord;
    type IntoIter = std::slice::Iter<'a, OpRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl FromIterator<OpRecord> for History {
    fn from_iter<T: IntoIterator<Item = OpRecord>>(iter: T) -> Self {
        let mut h = History::new();
        for r in iter {
            h.record(r);
        }
        h
    }
}

impl Extend<OpRecord> for History {
    fn extend<T: IntoIterator<Item = OpRecord>>(&mut self, iter: T) {
        for r in iter {
            self.record(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SystemId;
    use crate::time::SimTime;

    fn p(i: u16) -> ProcId {
        ProcId::new(SystemId(0), i)
    }

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    fn sample() -> History {
        let mut h = History::new();
        let v1 = Value::new(p(0), 1);
        let v2 = Value::new(p(1), 1);
        h.record(OpRecord::write(p(0), VarId(0), v1, t(1)));
        h.record(OpRecord::write(p(1), VarId(0), v2, t(2)));
        h.record(OpRecord::read(p(1), VarId(0), Some(v1), t(3)));
        h.record(OpRecord::read(p(0), VarId(1), None, t(4)));
        h
    }

    #[test]
    fn record_assigns_dense_ids() {
        let h = sample();
        for (i, r) in h.iter().enumerate() {
            assert_eq!(r.id, OpId(i as u64));
        }
        assert_eq!(h.len(), 4);
        assert!(!h.is_empty());
    }

    #[test]
    fn per_process_preserves_program_order() {
        let h = sample();
        assert_eq!(h.ops_of(p(0)), vec![OpId(0), OpId(3)]);
        assert_eq!(h.ops_of(p(1)), vec![OpId(1), OpId(2)]);
        let by = h.by_process();
        assert_eq!(by.len(), 2);
        assert_eq!(by[&p(1)], vec![OpId(1), OpId(2)]);
    }

    #[test]
    fn projection_keeps_all_writes_and_own_reads() {
        let h = sample();
        let proj = h.project_for(p(0));
        assert_eq!(proj.ops, vec![OpId(0), OpId(1), OpId(3)]);
        let proj1 = h.project_for(p(1));
        assert_eq!(proj1.ops, vec![OpId(0), OpId(1), OpId(2)]);
    }

    #[test]
    fn reads_from_resolves_writers_initial_and_thin_air() {
        let mut h = sample();
        // Read of a value nobody wrote.
        let ghost = Value::new(p(7), 99);
        h.record(OpRecord::read(p(0), VarId(0), Some(ghost), t(5)));
        let rf = h.reads_from();
        assert_eq!(rf[0], None);
        assert_eq!(rf[1], None);
        assert_eq!(rf[2], Some(ReadSource::Write(OpId(0))));
        assert_eq!(rf[3], Some(ReadSource::Initial));
        assert_eq!(rf[4], Some(ReadSource::ThinAir));
    }

    #[test]
    fn duplicate_write_is_rejected() {
        let mut h = sample();
        assert!(h.validate_differentiated().is_ok());
        // Same value to the same variable again.
        h.record(OpRecord::write(p(2), VarId(0), Value::new(p(0), 1), t(9)));
        let err = h.validate_differentiated().unwrap_err();
        match err {
            DifferentiatedError::DuplicateWrite {
                var, first, second, ..
            } => {
                assert_eq!(var, VarId(0));
                assert_eq!(first, OpId(0));
                assert_eq!(second, OpId(4));
            }
        }
    }

    #[test]
    fn same_value_to_different_vars_is_allowed() {
        let mut h = History::new();
        let v = Value::new(p(0), 1);
        h.record(OpRecord::write(p(0), VarId(0), v, t(1)));
        h.record(OpRecord::write(p(0), VarId(1), v, t(2)));
        assert!(h.validate_differentiated().is_ok());
    }

    #[test]
    fn filtered_reassigns_ids_and_preserves_order() {
        let h = sample();
        let writes_only = h.filtered(|r| r.kind.is_write());
        assert_eq!(writes_only.len(), 2);
        assert_eq!(writes_only.op(OpId(0)).proc, p(0));
        assert_eq!(writes_only.op(OpId(1)).proc, p(1));
    }

    #[test]
    fn procs_and_vars_enumerate_participants() {
        let h = sample();
        assert_eq!(h.procs().len(), 2);
        assert!(h.vars().contains(&VarId(0)));
        assert!(h.vars().contains(&VarId(1)));
    }

    #[test]
    fn collect_and_extend_build_histories() {
        let recs: Vec<OpRecord> = sample().iter().copied().collect();
        let h: History = recs.iter().copied().collect();
        assert_eq!(h.len(), 4);
        let mut h2 = History::new();
        h2.extend(recs);
        assert_eq!(h2, h);
    }

    #[test]
    fn display_lists_every_op() {
        let h = sample();
        let s = h.to_string();
        assert!(s.contains("history of 4 ops"));
        assert!(s.contains("op0"));
        assert!(s.contains("op3"));
    }
}
