//! Identifiers for systems, processes, variables and operations.
//!
//! The paper's model has a set of DSM systems `S^0, S^1, …`, each with its
//! own application processes and MCS-processes. Identifiers here are plain
//! newtypes ([C-NEWTYPE]) so that a process index can never be confused
//! with a variable index at compile time.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

/// Identifier of one DSM system (`S^q` in the paper).
///
/// Systems are numbered densely from zero within a world.
///
/// # Example
///
/// ```
/// use cmi_types::SystemId;
/// let s = SystemId(2);
/// assert_eq!(s.to_string(), "S2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SystemId(pub u16);

impl SystemId {
    /// Index of this system as a `usize`, for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SystemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Identifier of one process, unique across the whole interconnected world.
///
/// A process belongs to exactly one system and has a dense index within
/// it. Both application processes and IS-processes are processes; whether
/// a given process is an IS-process is recorded by the world topology, not
/// by the identifier (the paper treats an IS-process as "a special kind of
/// application process").
///
/// # Example
///
/// ```
/// use cmi_types::{ProcId, SystemId};
/// let p = ProcId::new(SystemId(0), 3);
/// assert_eq!(p.system, SystemId(0));
/// assert_eq!(p.index, 3);
/// assert_eq!(p.to_string(), "S0.p3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId {
    /// System this process belongs to.
    pub system: SystemId,
    /// Dense index of the process within its system (MCS-process slot).
    pub index: u16,
}

impl ProcId {
    /// Creates a process identifier from a system and an in-system index.
    pub fn new(system: SystemId, index: u16) -> Self {
        ProcId { system, index }
    }

    /// In-system index as `usize`, for vector-clock component lookups.
    pub fn slot(self) -> usize {
        self.index as usize
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.p{}", self.system, self.index)
    }
}

/// Identifier of one shared variable (`x`, `y`, … in the paper).
///
/// All systems being interconnected share the same variable namespace:
/// the paper requires the MCS-process attached to each IS-process to hold
/// "a local replica of each of the variables of the shared memory".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// Index of this variable as a `usize`, for replica-array lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Globally unique identifier of one recorded memory operation.
///
/// Assigned densely by [`History::record`](crate::History::record) in
/// recording order; useful as a stable key when building causal-order
/// graphs over a history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u64);

impl OpId {
    /// Index of this operation in its history's record vector.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms_are_compact_and_distinct() {
        assert_eq!(SystemId(0).to_string(), "S0");
        assert_eq!(ProcId::new(SystemId(1), 2).to_string(), "S1.p2");
        assert_eq!(VarId(7).to_string(), "x7");
        assert_eq!(OpId(42).to_string(), "op42");
    }

    #[test]
    fn proc_ids_order_by_system_then_index() {
        let a = ProcId::new(SystemId(0), 9);
        let b = ProcId::new(SystemId(1), 0);
        assert!(a < b);
        let c = ProcId::new(SystemId(1), 1);
        assert!(b < c);
    }

    #[test]
    fn ids_round_trip_through_json() {
        use cmi_obs::{FromJson, Json, ToJson};
        let p = ProcId::new(SystemId(3), 4);
        let json = p.to_json().to_compact();
        let back = ProcId::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn slot_and_index_accessors() {
        assert_eq!(SystemId(5).index(), 5);
        assert_eq!(ProcId::new(SystemId(0), 8).slot(), 8);
        assert_eq!(VarId(3).index(), 3);
        assert_eq!(OpId(10).index(), 10);
    }
}
