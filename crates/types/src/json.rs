//! JSON encodings of the core vocabulary, via `cmi-obs`.
//!
//! Replaces the former serde derives: every type that appears in a run
//! artifact implements [`ToJson`], and the types needed to read artifacts
//! back (histories, operations, identifiers) also implement [`FromJson`].
//!
//! Shapes are explicit and stable:
//!
//! - `SystemId`, `VarId`, `OpId` — plain numbers
//! - `ProcId` — `{"system": 0, "index": 3}`
//! - `Value` — `{"origin": <proc>, "seq": 7}`
//! - `SimTime` — nanoseconds since run start, as a number
//! - `OpRecord` — `{"id", "proc", "var", "kind", "value", "issued_at_ns",
//!   "at_ns"}` with `kind` `"read"`/`"write"` and `value` `null` for a
//!   read of `⊥`
//! - `History` — `{"ops": [<op record>...]}`
//! - `VectorClock` — array of components

use cmi_obs::{FromJson, Json, ToJson};

use crate::history::{DifferentiatedError, History, ProcessProjection, ReadSource};
use crate::ids::{OpId, ProcId, SystemId, VarId};
use crate::op::{OpKind, OpRecord};
use crate::time::SimTime;
use crate::value::Value;
use crate::vclock::VectorClock;

impl ToJson for SystemId {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for SystemId {
    fn from_json(v: &Json) -> Result<Self, String> {
        u16::from_json(v).map(SystemId)
    }
}

impl ToJson for VarId {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for VarId {
    fn from_json(v: &Json) -> Result<Self, String> {
        u32::from_json(v).map(VarId)
    }
}

impl ToJson for OpId {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for OpId {
    fn from_json(v: &Json) -> Result<Self, String> {
        u64::from_json(v).map(OpId)
    }
}

impl ToJson for ProcId {
    fn to_json(&self) -> Json {
        Json::obj([
            ("system", self.system.to_json()),
            ("index", self.index.to_json()),
        ])
    }
}

impl FromJson for ProcId {
    fn from_json(v: &Json) -> Result<Self, String> {
        let system = field(v, "system")?;
        let index = field(v, "index")?;
        Ok(ProcId { system, index })
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Json {
        Json::obj([
            ("origin", self.origin().to_json()),
            ("seq", self.seq().to_json()),
        ])
    }
}

impl FromJson for Value {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Value::new(field(v, "origin")?, field(v, "seq")?))
    }
}

impl ToJson for SimTime {
    fn to_json(&self) -> Json {
        self.as_nanos().to_json()
    }
}

impl FromJson for SimTime {
    fn from_json(v: &Json) -> Result<Self, String> {
        u64::from_json(v).map(SimTime::from_nanos)
    }
}

impl ToJson for VectorClock {
    fn to_json(&self) -> Json {
        Json::Arr((0..self.width()).map(|i| self.get(i).to_json()).collect())
    }
}

impl FromJson for VectorClock {
    fn from_json(v: &Json) -> Result<Self, String> {
        Vec::<u32>::from_json(v).map(VectorClock::from_components)
    }
}

impl ToJson for OpRecord {
    fn to_json(&self) -> Json {
        let (kind, value) = match self.kind {
            OpKind::Read { value } => ("read", value.to_json()),
            OpKind::Write { value } => ("write", value.to_json()),
        };
        // The UNRECORDED sentinel (u64::MAX) is not exactly representable
        // as a JSON number; encode it as null.
        let id = if self.id == OpRecord::UNRECORDED {
            Json::Null
        } else {
            self.id.to_json()
        };
        Json::obj([
            ("id", id),
            ("proc", self.proc.to_json()),
            ("var", self.var.to_json()),
            ("kind", kind.to_json()),
            ("value", value),
            ("issued_at_ns", self.issued_at.to_json()),
            ("at_ns", self.at.to_json()),
        ])
    }
}

impl FromJson for OpRecord {
    fn from_json(v: &Json) -> Result<Self, String> {
        let kind_name: String = field(v, "kind")?;
        let value: Option<Value> = field(v, "value")?;
        let kind = match kind_name.as_str() {
            "read" => OpKind::Read { value },
            "write" => OpKind::Write {
                value: value.ok_or_else(|| "write record with null value".to_string())?,
            },
            other => return Err(format!("unknown op kind {other:?}")),
        };
        let id: Option<OpId> = field(v, "id")?;
        Ok(OpRecord {
            id: id.unwrap_or(OpRecord::UNRECORDED),
            proc: field(v, "proc")?,
            var: field(v, "var")?,
            kind,
            issued_at: field(v, "issued_at_ns")?,
            at: field(v, "at_ns")?,
        })
    }
}

impl ToJson for History {
    fn to_json(&self) -> Json {
        Json::obj([("ops", Json::arr(self.iter()))])
    }
}

impl FromJson for History {
    fn from_json(v: &Json) -> Result<Self, String> {
        let ops: Vec<OpRecord> = field(v, "ops")?;
        let mut h = History::new();
        for (i, op) in ops.into_iter().enumerate() {
            let id = h.record(op);
            if id.index() != i {
                return Err("op ids must be dense and in order".to_string());
            }
        }
        Ok(h)
    }
}

impl History {
    /// Parses a history previously serialized with
    /// [`ToJson::to_json`] (either compact or pretty form).
    pub fn parse_json(text: &str) -> Result<History, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        History::from_json(&v)
    }
}

impl ToJson for ReadSource {
    fn to_json(&self) -> Json {
        match self {
            ReadSource::Initial => Json::Str("initial".into()),
            ReadSource::Write(id) => id.to_json(),
            ReadSource::ThinAir => Json::Str("thin-air".into()),
        }
    }
}

impl ToJson for ProcessProjection {
    fn to_json(&self) -> Json {
        Json::obj([("proc", self.proc.to_json()), ("ops", self.ops.to_json())])
    }
}

impl ToJson for DifferentiatedError {
    fn to_json(&self) -> Json {
        match self {
            DifferentiatedError::DuplicateWrite {
                var,
                value,
                first,
                second,
            } => Json::obj([
                ("error", Json::Str("duplicate_write".into())),
                ("var", var.to_json()),
                ("value", value.to_json()),
                ("first", first.to_json()),
                ("second", second.to_json()),
            ]),
        }
    }
}

/// Decodes a required object member, prefixing errors with the key.
fn field<T: FromJson>(v: &Json, key: &str) -> Result<T, String> {
    let member = v.get(key).ok_or_else(|| format!("missing field {key:?}"))?;
    T::from_json(member).map_err(|e| format!("{key}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: u16, i: u16) -> ProcId {
        ProcId::new(SystemId(s), i)
    }

    #[test]
    fn history_round_trips_in_both_renderings() {
        let mut h = History::new();
        let v = Value::new(p(0, 0), 1);
        h.record(OpRecord::write(
            p(0, 0),
            VarId(0),
            v,
            SimTime::from_millis(1),
        ));
        h.record(
            OpRecord::read(p(1, 2), VarId(0), Some(v), SimTime::from_millis(3))
                .with_issued_at(SimTime::from_millis(2)),
        );
        h.record(OpRecord::read(
            p(0, 1),
            VarId(1),
            None,
            SimTime::from_millis(4),
        ));
        let compact = h.to_json().to_compact();
        let pretty = h.to_json().to_pretty();
        assert_eq!(History::parse_json(&compact).unwrap(), h);
        assert_eq!(History::parse_json(&pretty).unwrap(), h);
    }

    #[test]
    fn read_of_bottom_serializes_as_null_value() {
        let rec = OpRecord::read(p(0, 0), VarId(2), None, SimTime::ZERO);
        let json = rec.to_json();
        assert!(json.get("value").unwrap().is_null());
        let back = OpRecord::from_json(&json).unwrap();
        assert_eq!(back.read_value(), Some(None));
    }

    #[test]
    fn vector_clock_is_a_component_array() {
        let mut c = VectorClock::new(3);
        c.tick(1);
        let json = c.to_json();
        assert_eq!(json.to_compact(), "[0,1,0]");
        assert_eq!(VectorClock::from_json(&json).unwrap(), c);
    }

    #[test]
    fn malformed_histories_are_rejected() {
        for bad in [
            r#"{"ops": [{"kind": "write"}]}"#,
            r#"{"ops": [{"id":0,"proc":{"system":0,"index":0},"var":0,"kind":"write","value":null,"issued_at_ns":0,"at_ns":0}]}"#,
            r#"{"ops": 3}"#,
            r#"[]"#,
        ] {
            assert!(History::parse_json(bad).is_err(), "accepted {bad}");
        }
    }
}
