//! Core vocabulary for the causal-memory interconnection library (`cmi`).
//!
//! This crate defines the terms of the paper *"On the interconnection of
//! causal memory systems"* (Fernández, Jiménez, Cholvi; PODC 2000 / JPDC
//! 2004, Section 2):
//!
//! * [`SystemId`], [`ProcId`] — a *DSM system* `S^q` is a set of
//!   application processes interacting through shared variables; an
//!   execution spans one or more systems.
//! * [`VarId`], [`Value`] — named shared variables and the values written
//!   to them. Following the paper we assume **a given value is written at
//!   most once in any given variable** (histories are *differentiated*);
//!   [`Value`] enforces this by construction: it is the pair
//!   *(original writer, per-writer sequence number)*.
//! * [`OpRecord`], [`OpKind`] — read (`r_i^q(x)v`) and write
//!   (`w_i^q(x)v`) memory operations.
//! * [`History`] — a *computation* `α^q`: the sequence of memory
//!   operations observed in an execution, with the projections `α_i^q`
//!   used by Definitions 3–5 of the paper.
//! * [`VectorClock`] — the logical-time substrate used by the
//!   propagation-based causal MCS protocols in `cmi-memory`.
//! * [`SimTime`] — virtual time, shared with the `cmi-sim` discrete-event
//!   simulator.
//! * [`TraceCtx`] — the compact lineage context (update identity, parent,
//!   hop count) threaded through the stack when causal lineage tracing is
//!   enabled; [`Value::update_id`] derives the identity every message
//!   already carries.
//!
//! # Example
//!
//! ```
//! use cmi_types::{History, OpRecord, ProcId, SystemId, Value, VarId, SimTime};
//!
//! let s0 = SystemId(0);
//! let p = ProcId::new(s0, 0);
//! let q = ProcId::new(s0, 1);
//! let x = VarId(0);
//! let v = Value::new(p, 1);
//!
//! let mut h = History::new();
//! h.record(OpRecord::write(p, x, v, SimTime::from_nanos(10)));
//! h.record(OpRecord::read(q, x, Some(v), SimTime::from_nanos(20)));
//! assert_eq!(h.len(), 2);
//! assert!(h.validate_differentiated().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod history;
pub mod ids;
pub mod json;
pub mod op;
pub mod time;
pub mod trace;
pub mod value;
pub mod vclock;

pub use history::{DifferentiatedError, History, ProcessProjection, ReadSource};
pub use ids::{OpId, ProcId, SystemId, VarId};
pub use op::{OpKind, OpRecord};
pub use time::SimTime;
pub use trace::TraceCtx;
pub use value::Value;
pub use vclock::{ClockOrdering, VectorClock};
