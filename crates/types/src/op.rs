//! Memory operations: the reads and writes of a computation.

use std::fmt;

use crate::ids::{OpId, ProcId, VarId};
use crate::time::SimTime;
use crate::value::Value;

/// The kind of a memory operation together with its value payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A read `r_i^q(x)v` reporting `value`; `None` means the read
    /// returned the initial value `⊥` (the paper models initial values as
    /// written by initializing writes, but allowing `⊥` lets the checker
    /// also handle histories without an initialization phase).
    Read {
        /// The value the read reported, or `None` for the initial value.
        value: Option<Value>,
    },
    /// A write `w_i^q(x)v` storing `value`.
    Write {
        /// The (globally unique) value stored.
        value: Value,
    },
}

impl OpKind {
    /// `true` if this is a read operation.
    pub fn is_read(self) -> bool {
        matches!(self, OpKind::Read { .. })
    }

    /// `true` if this is a write operation.
    pub fn is_write(self) -> bool {
        matches!(self, OpKind::Write { .. })
    }

    /// The value carried by the operation (`None` for a read of `⊥`).
    pub fn value(self) -> Option<Value> {
        match self {
            OpKind::Read { value } => value,
            OpKind::Write { value } => Some(value),
        }
    }
}

/// One recorded memory operation of a computation.
///
/// `id` is assigned by [`History::record`](crate::History::record); an
/// `OpRecord` that has not been recorded yet carries the placeholder
/// [`OpRecord::UNRECORDED`].
///
/// # Example
///
/// ```
/// use cmi_types::{OpRecord, ProcId, SimTime, SystemId, Value, VarId};
///
/// let p = ProcId::new(SystemId(0), 0);
/// let w = OpRecord::write(p, VarId(1), Value::new(p, 1), SimTime::from_millis(1));
/// assert!(w.kind.is_write());
/// assert_eq!(w.var, VarId(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// Dense identifier within the owning [`History`](crate::History).
    pub id: OpId,
    /// The process that issued the operation (may be an IS-process).
    pub proc: ProcId,
    /// The variable the operation acts on.
    pub var: VarId,
    /// Read/write kind and value payload.
    pub kind: OpKind,
    /// Virtual time at which the operation was *issued* (its call sent to
    /// the MCS-process). Equals [`at`](Self::at) for operations that
    /// complete immediately; strictly earlier for blocking operations.
    /// The interval `[issued_at, at]` is what the linearizability checker
    /// consumes — real-time precedence only holds between
    /// non-overlapping operations.
    pub issued_at: SimTime,
    /// Virtual time at which the operation completed (its response was
    /// returned to the issuing process). Completion times order the
    /// operations of one process, giving the program order `→^{α}` used by
    /// Definition 2(1).
    pub at: SimTime,
}

impl OpRecord {
    /// Placeholder id carried before the record is inserted into a history.
    pub const UNRECORDED: OpId = OpId(u64::MAX);

    /// Creates an unrecorded write record `w(var)value` by `proc` that
    /// issued and completed at `at`.
    pub fn write(proc: ProcId, var: VarId, value: Value, at: SimTime) -> Self {
        OpRecord {
            id: Self::UNRECORDED,
            proc,
            var,
            kind: OpKind::Write { value },
            issued_at: at,
            at,
        }
    }

    /// Creates an unrecorded read record `r(var)value` by `proc` that
    /// issued and completed at `at`.
    pub fn read(proc: ProcId, var: VarId, value: Option<Value>, at: SimTime) -> Self {
        OpRecord {
            id: Self::UNRECORDED,
            proc,
            var,
            kind: OpKind::Read { value },
            issued_at: at,
            at,
        }
    }

    /// Sets the issue instant (blocking operations).
    ///
    /// # Panics
    ///
    /// Panics if `issued_at` is after the completion instant.
    pub fn with_issued_at(mut self, issued_at: SimTime) -> Self {
        assert!(issued_at <= self.at, "operation issued after it completed");
        self.issued_at = issued_at;
        self
    }

    /// The value written, if this is a write.
    pub fn written_value(&self) -> Option<Value> {
        match self.kind {
            OpKind::Write { value } => Some(value),
            OpKind::Read { .. } => None,
        }
    }

    /// The value read, if this is a read (`Some(None)` = read of `⊥`).
    pub fn read_value(&self) -> Option<Option<Value>> {
        match self.kind {
            OpKind::Read { value } => Some(value),
            OpKind::Write { .. } => None,
        }
    }
}

impl fmt::Display for OpRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            OpKind::Write { value } => write!(f, "w[{}]({}){}", self.proc, self.var, value),
            OpKind::Read { value: Some(v) } => write!(f, "r[{}]({}){}", self.proc, self.var, v),
            OpKind::Read { value: None } => write!(f, "r[{}]({})⊥", self.proc, self.var),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SystemId;

    fn p() -> ProcId {
        ProcId::new(SystemId(0), 0)
    }

    #[test]
    fn write_record_carries_value() {
        let v = Value::new(p(), 1);
        let w = OpRecord::write(p(), VarId(0), v, SimTime::ZERO);
        assert_eq!(w.written_value(), Some(v));
        assert_eq!(w.read_value(), None);
        assert!(w.kind.is_write());
        assert!(!w.kind.is_read());
        assert_eq!(w.kind.value(), Some(v));
    }

    #[test]
    fn read_record_distinguishes_initial_value() {
        let r = OpRecord::read(p(), VarId(0), None, SimTime::ZERO);
        assert_eq!(r.read_value(), Some(None));
        assert_eq!(r.written_value(), None);
        assert_eq!(r.kind.value(), None);
        assert!(r.kind.is_read());
    }

    #[test]
    fn display_matches_paper_notation() {
        let v = Value::new(p(), 3);
        let w = OpRecord::write(p(), VarId(1), v, SimTime::ZERO);
        assert_eq!(w.to_string(), "w[S0.p0](x1)v(S0.p0#3)");
        let r = OpRecord::read(p(), VarId(1), None, SimTime::ZERO);
        assert_eq!(r.to_string(), "r[S0.p0](x1)⊥");
    }

    #[test]
    fn unrecorded_placeholder_is_recognizable() {
        let w = OpRecord::write(p(), VarId(0), Value::new(p(), 1), SimTime::ZERO);
        assert_eq!(w.id, OpRecord::UNRECORDED);
    }

    #[test]
    fn issue_defaults_to_completion_and_can_be_earlier() {
        let at = SimTime::from_millis(5);
        let r = OpRecord::read(p(), VarId(0), None, at);
        assert_eq!(r.issued_at, at);
        let blocking = r.with_issued_at(SimTime::from_millis(2));
        assert_eq!(blocking.issued_at, SimTime::from_millis(2));
        assert_eq!(blocking.at, at);
    }

    #[test]
    #[should_panic(expected = "issued after it completed")]
    fn issue_after_completion_panics() {
        let r = OpRecord::read(p(), VarId(0), None, SimTime::from_millis(1));
        let _ = r.with_issued_at(SimTime::from_millis(2));
    }
}
