//! Virtual time for the discrete-event simulator.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point in virtual (simulated) time, in nanoseconds since the start of
/// the run.
///
/// `SimTime` is totally ordered and supports adding a [`Duration`], which
/// is how event delays are expressed throughout the simulator.
///
/// # Example
///
/// ```
/// use cmi_types::SimTime;
/// use std::time::Duration;
///
/// let t = SimTime::ZERO + Duration::from_millis(5);
/// assert_eq!(t.as_nanos(), 5_000_000);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of a simulation run.
    pub const ZERO: SimTime = SimTime(0);

    /// The greatest representable instant; used as "never" in schedules.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from a raw nanosecond count.
    pub fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time from a microsecond count.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows the nanosecond representation.
    pub fn from_micros(micros: u64) -> Self {
        SimTime(micros.checked_mul(1_000).expect("SimTime overflow"))
    }

    /// Creates a time from a millisecond count.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows the nanosecond representation.
    pub fn from_millis(millis: u64) -> Self {
        SimTime(millis.checked_mul(1_000_000).expect("SimTime overflow"))
    }

    /// This instant as nanoseconds since the start of the run.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed as a [`Duration`] since the start of the run.
    pub fn as_duration(self) -> Duration {
        Duration::from_nanos(self.0)
    }

    /// Saturating difference `self - earlier` as a [`Duration`].
    ///
    /// Returns [`Duration::ZERO`] when `earlier` is later than `self`,
    /// mirroring [`std::time::Instant::saturating_duration_since`].
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        let nanos = u64::try_from(rhs.as_nanos()).expect("Duration too large for SimTime");
        SimTime(self.0.checked_add(nanos).expect("SimTime overflow"))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    fn sub(self, rhs: SimTime) -> Duration {
        assert!(
            self >= rhs,
            "SimTime subtraction underflow: {self} - {rhs} (use saturating_since)"
        );
        Duration::from_nanos(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render with the coarsest unit that loses no precision, to keep
        // traces readable.
        if self.0 == u64::MAX {
            write!(f, "t=∞")
        } else if self.0.is_multiple_of(1_000_000) {
            write!(f, "t={}ms", self.0 / 1_000_000)
        } else if self.0.is_multiple_of(1_000) {
            write!(f, "t={}us", self.0 / 1_000)
        } else {
            write!(f, "t={}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
    }

    #[test]
    fn add_duration_advances_time() {
        let t = SimTime::from_millis(2) + Duration::from_millis(3);
        assert_eq!(t, SimTime::from_millis(5));
    }

    #[test]
    fn subtraction_yields_duration() {
        let a = SimTime::from_millis(7);
        let b = SimTime::from_millis(4);
        assert_eq!(a - b, Duration::from_millis(3));
        assert_eq!(b.saturating_since(a), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    fn display_picks_readable_units() {
        assert_eq!(SimTime::from_millis(3).to_string(), "t=3ms");
        assert_eq!(SimTime::from_micros(1500).to_string(), "t=1500us");
        assert_eq!(SimTime::from_nanos(17).to_string(), "t=17ns");
        assert_eq!(SimTime::MAX.to_string(), "t=∞");
    }

    #[test]
    fn max_returns_later_instant() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }
}
