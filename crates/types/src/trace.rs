//! The compact trace context that rides with an update through the
//! protocol stack when causal lineage tracing is enabled.
//!
//! Every protocol message, IS-process upcall and transport frame in the
//! workspace already carries the update's [`Value`] — and a `Value` *is*
//! a globally unique identity (origin process + per-origin sequence
//! number, the differentiated-histories assumption made structural). A
//! [`TraceCtx`] materializes that identity as a [`UpdateId`] together
//! with the two pieces of lineage state the recorder threads along: the
//! program-order parent and the hop count (inter-system link traversals
//! from the origin system). Constructing one is a handful of bit
//! operations; nothing is allocated, and when lineage is disabled no
//! `TraceCtx` is ever built.

use cmi_obs::lineage::UpdateId;

use crate::ids::ProcId;
use crate::value::Value;

/// Compact lineage context of one in-flight update.
///
/// # Example
///
/// ```
/// use cmi_types::{ProcId, SystemId, TraceCtx, Value};
///
/// let p = ProcId::new(SystemId(1), 2);
/// let v = Value::new(p, 7);
/// let ctx = TraceCtx::origin(v);
/// assert_eq!(ctx.update, v.update_id());
/// assert_eq!(ctx.hop, 0);
/// assert_eq!(ctx.forwarded().hop, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// The update's globally unique identity.
    pub update: UpdateId,
    /// The origin process's previous update, if any (program order).
    pub parent: Option<UpdateId>,
    /// Inter-system link traversals from the origin system so far.
    pub hop: u32,
}

impl TraceCtx {
    /// The context of a freshly issued write (hop 0, no parent linked —
    /// the recorder derives the parent from issue order).
    pub fn origin(value: Value) -> Self {
        TraceCtx {
            update: value.update_id(),
            parent: None,
            hop: 0,
        }
    }

    /// The context after one more inter-system link traversal.
    pub fn forwarded(self) -> Self {
        TraceCtx {
            hop: self.hop + 1,
            ..self
        }
    }
}

impl Value {
    /// The globally unique lineage identity of the write that produced
    /// this value: `(origin system, origin process, per-origin seq)`
    /// packed into a [`UpdateId`]. Because propagation re-writes the
    /// *same* value (`prop(op)` carries `orig(op)`'s value), every
    /// message that carries a `Value` carries its lineage identity.
    pub fn update_id(self) -> UpdateId {
        UpdateId::pack(self.origin().system.0, self.origin().index, self.seq())
    }
}

/// The lineage identity of the write a process `p` issues with sequence
/// number `seq` — the same id [`Value::update_id`] returns for the
/// value it writes.
pub fn update_id_of(p: ProcId, seq: u32) -> UpdateId {
    UpdateId::pack(p.system.0, p.index, seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SystemId;

    #[test]
    fn update_id_round_trips_the_value_triple() {
        let p = ProcId::new(SystemId(3), 5);
        let v = Value::new(p, 99);
        let u = v.update_id();
        assert_eq!(u.system(), 3);
        assert_eq!(u.proc(), 5);
        assert_eq!(u.seq(), 99);
        assert_eq!(u, update_id_of(p, 99));
        // Display agrees with Value's origin naming.
        assert_eq!(u.to_string(), "S3.p5#99");
    }

    #[test]
    fn distinct_writes_get_distinct_update_ids() {
        let p = ProcId::new(SystemId(0), 0);
        let q = ProcId::new(SystemId(1), 0);
        assert_ne!(Value::new(p, 1).update_id(), Value::new(p, 2).update_id());
        assert_ne!(Value::new(p, 1).update_id(), Value::new(q, 1).update_id());
    }

    #[test]
    fn forwarding_increments_only_the_hop() {
        let v = Value::new(ProcId::new(SystemId(0), 1), 4);
        let ctx = TraceCtx::origin(v);
        let f = ctx.forwarded().forwarded();
        assert_eq!(f.update, ctx.update);
        assert_eq!(f.parent, None);
        assert_eq!(f.hop, 2);
    }
}
