//! Values written to shared variables.

use std::fmt;

use crate::ids::ProcId;

/// A value written to a shared variable.
///
/// The paper assumes (Section 2) that *"a given value is written at most
/// once in any given variable"* — histories are **differentiated**.
/// Instead of asking workloads to be careful, we make uniqueness
/// structural: a value is the pair *(original writer, per-writer sequence
/// number)*, so two distinct write events can never carry equal values.
///
/// When a write operation is propagated between systems by an IS-process,
/// the IS-process's write carries the **same** `Value` (same `origin`,
/// same `seq`): in the paper's terms, `prop(op)` writes the same value as
/// `orig(op)`, which is what lets a read in either system be matched to
/// the unique originating write.
///
/// # Example
///
/// ```
/// use cmi_types::{ProcId, SystemId, Value};
///
/// let p = ProcId::new(SystemId(0), 1);
/// let v1 = Value::new(p, 1);
/// let v2 = Value::new(p, 2);
/// assert_ne!(v1, v2);
/// assert_eq!(v1.origin(), p);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Value {
    origin: ProcId,
    seq: u32,
}

impl Value {
    /// Creates the `seq`-th value originated by process `origin`.
    ///
    /// Callers (workload generators, protocol drivers) must use a fresh
    /// `seq` per origin for every new write; `cmi-memory`'s workload
    /// generator does this automatically and
    /// [`History::validate_differentiated`](crate::History::validate_differentiated)
    /// re-checks it.
    pub fn new(origin: ProcId, seq: u32) -> Self {
        Value { origin, seq }
    }

    /// The application process that *originally* issued the write of this
    /// value (not the IS-process that may have re-written it during
    /// propagation).
    pub fn origin(self) -> ProcId {
        self.origin
    }

    /// Per-origin sequence number of this value.
    pub fn seq(self) -> u32 {
        self.seq
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v({}#{})", self.origin, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SystemId;

    #[test]
    fn values_from_same_origin_differ_by_seq() {
        let p = ProcId::new(SystemId(0), 0);
        assert_ne!(Value::new(p, 0), Value::new(p, 1));
        assert_eq!(Value::new(p, 3), Value::new(p, 3));
    }

    #[test]
    fn values_from_different_origins_differ() {
        let p = ProcId::new(SystemId(0), 0);
        let q = ProcId::new(SystemId(1), 0);
        assert_ne!(Value::new(p, 0), Value::new(q, 0));
    }

    #[test]
    fn display_names_origin_and_seq() {
        let p = ProcId::new(SystemId(0), 2);
        assert_eq!(Value::new(p, 5).to_string(), "v(S0.p2#5)");
    }
}
