//! Vector clocks, the logical-time substrate of the propagation-based
//! causal MCS protocols.

use std::cmp::Ordering;
use std::fmt;

/// Result of comparing two vector clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClockOrdering {
    /// Component-wise equal.
    Equal,
    /// Strictly less on at least one component, never greater.
    Before,
    /// Strictly greater on at least one component, never less.
    After,
    /// Incomparable: each clock exceeds the other somewhere.
    Concurrent,
}

/// A fixed-width vector clock over the MCS-processes of one system.
///
/// Component `k` counts the write operations issued by the MCS-process
/// with in-system index `k` that the owner has *applied* (or issued).
/// Used by `cmi-memory`'s causal protocols for causal-delivery gating and
/// by the trace checks of Lemma 1 / the Causal Updating Property.
///
/// # Example
///
/// ```
/// use cmi_types::{ClockOrdering, VectorClock};
///
/// let mut a = VectorClock::new(3);
/// let mut b = VectorClock::new(3);
/// a.tick(0);
/// assert_eq!(a.compare(&b), ClockOrdering::After);
/// b.merge(&a);
/// b.tick(2);
/// assert_eq!(a.compare(&b), ClockOrdering::Before);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct VectorClock(Vec<u32>);

impl VectorClock {
    /// Creates the zero clock of width `n`.
    pub fn new(n: usize) -> Self {
        VectorClock(vec![0; n])
    }

    /// Creates a clock from explicit components.
    pub fn from_components(components: Vec<u32>) -> Self {
        VectorClock(components)
    }

    /// Number of components (MCS-processes tracked).
    pub fn width(&self) -> usize {
        self.0.len()
    }

    /// Component `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.width()`.
    pub fn get(&self, slot: usize) -> u32 {
        self.0[slot]
    }

    /// Increments component `slot` and returns its new value.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= self.width()`.
    pub fn tick(&mut self, slot: usize) -> u32 {
        self.0[slot] += 1;
        self.0[slot]
    }

    /// Component-wise maximum with `other`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn merge(&mut self, other: &VectorClock) {
        assert_eq!(self.width(), other.width(), "vector clock width mismatch");
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Compares two clocks of the same width.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn compare(&self, other: &VectorClock) -> ClockOrdering {
        assert_eq!(self.width(), other.width(), "vector clock width mismatch");
        let mut less = false;
        let mut greater = false;
        for (a, b) in self.0.iter().zip(&other.0) {
            match a.cmp(b) {
                Ordering::Less => less = true,
                Ordering::Greater => greater = true,
                Ordering::Equal => {}
            }
        }
        match (less, greater) {
            (false, false) => ClockOrdering::Equal,
            (true, false) => ClockOrdering::Before,
            (false, true) => ClockOrdering::After,
            (true, true) => ClockOrdering::Concurrent,
        }
    }

    /// `true` if `self ≤ other` component-wise.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn leq(&self, other: &VectorClock) -> bool {
        matches!(
            self.compare(other),
            ClockOrdering::Equal | ClockOrdering::Before
        )
    }

    /// `true` if the clocks are concurrent (incomparable).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        self.compare(other) == ClockOrdering::Concurrent
    }

    /// Causal-delivery test: a message stamped `msg` sent by process
    /// `sender` is deliverable at a receiver whose clock is `self` iff
    /// `msg[sender] == self[sender] + 1` and `msg[k] <= self[k]` for all
    /// other `k` — i.e. it is the sender's next message and all its causal
    /// predecessors have been applied.
    ///
    /// # Panics
    ///
    /// Panics if widths differ or `sender` is out of range.
    pub fn deliverable_from(&self, sender: usize, msg: &VectorClock) -> bool {
        assert_eq!(self.width(), msg.width(), "vector clock width mismatch");
        for k in 0..self.width() {
            let bound = if k == sender {
                self.0[k] + 1
            } else {
                self.0[k]
            };
            if k == sender {
                if msg.0[k] != bound {
                    return false;
                }
            } else if msg.0[k] > bound {
                return false;
            }
        }
        true
    }

    /// Components as a slice, for serialization and debugging.
    pub fn components(&self) -> &[u32] {
        &self.0
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_clocks_are_equal() {
        let a = VectorClock::new(4);
        let b = VectorClock::new(4);
        assert_eq!(a.compare(&b), ClockOrdering::Equal);
        assert!(a.leq(&b));
        assert!(!a.concurrent(&b));
    }

    #[test]
    fn tick_makes_clock_strictly_after() {
        let mut a = VectorClock::new(2);
        let b = VectorClock::new(2);
        assert_eq!(a.tick(1), 1);
        assert_eq!(a.compare(&b), ClockOrdering::After);
        assert_eq!(b.compare(&a), ClockOrdering::Before);
    }

    #[test]
    fn independent_ticks_are_concurrent() {
        let mut a = VectorClock::new(2);
        let mut b = VectorClock::new(2);
        a.tick(0);
        b.tick(1);
        assert!(a.concurrent(&b));
        assert!(b.concurrent(&a));
    }

    #[test]
    fn merge_takes_componentwise_max() {
        let mut a = VectorClock::from_components(vec![3, 0, 2]);
        let b = VectorClock::from_components(vec![1, 4, 2]);
        a.merge(&b);
        assert_eq!(a.components(), &[3, 4, 2]);
        assert!(b.leq(&a));
    }

    #[test]
    fn delivery_requires_next_from_sender() {
        let receiver = VectorClock::from_components(vec![2, 5]);
        // Sender 0's next message.
        let m1 = VectorClock::from_components(vec![3, 5]);
        assert!(receiver.deliverable_from(0, &m1));
        // Skips a message from sender 0.
        let m2 = VectorClock::from_components(vec![4, 5]);
        assert!(!receiver.deliverable_from(0, &m2));
        // Duplicate / old message.
        let m3 = VectorClock::from_components(vec![2, 5]);
        assert!(!receiver.deliverable_from(0, &m3));
    }

    #[test]
    fn delivery_requires_causal_predecessors() {
        let receiver = VectorClock::from_components(vec![2, 5]);
        // Depends on an unapplied message from process 1.
        let m = VectorClock::from_components(vec![3, 6]);
        assert!(!receiver.deliverable_from(0, &m));
    }

    #[test]
    fn display_is_compact() {
        let c = VectorClock::from_components(vec![1, 0, 7]);
        assert_eq!(c.to_string(), "⟨1,0,7⟩");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_widths_panic() {
        let a = VectorClock::new(2);
        let b = VectorClock::new(3);
        let _ = a.compare(&b);
    }
}
