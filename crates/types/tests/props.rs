//! Property tests for the core vocabulary: vector-clock laws and
//! history invariants.

use cmi_types::{
    ClockOrdering, History, OpRecord, ProcId, ReadSource, SimTime, SystemId, Value, VarId,
    VectorClock,
};
use proptest::prelude::*;

fn clock(width: usize) -> impl Strategy<Value = VectorClock> {
    proptest::collection::vec(0u32..20, width).prop_map(VectorClock::from_components)
}

proptest! {
    #[test]
    fn merge_is_commutative_and_idempotent(a in clock(5), b in clock(5)) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        let mut abb = ab.clone();
        abb.merge(&b);
        prop_assert_eq!(&abb, &ab);
    }

    #[test]
    fn merge_dominates_both_inputs(a in clock(5), b in clock(5)) {
        let mut m = a.clone();
        m.merge(&b);
        prop_assert!(a.leq(&m));
        prop_assert!(b.leq(&m));
    }

    #[test]
    fn compare_is_antisymmetric(a in clock(4), b in clock(4)) {
        match a.compare(&b) {
            ClockOrdering::Before => prop_assert_eq!(b.compare(&a), ClockOrdering::After),
            ClockOrdering::After => prop_assert_eq!(b.compare(&a), ClockOrdering::Before),
            ClockOrdering::Equal => prop_assert_eq!(b.compare(&a), ClockOrdering::Equal),
            ClockOrdering::Concurrent => {
                prop_assert_eq!(b.compare(&a), ClockOrdering::Concurrent)
            }
        }
    }

    #[test]
    fn tick_strictly_increases(mut a in clock(4), slot in 0usize..4) {
        let before = a.clone();
        a.tick(slot);
        prop_assert_eq!(before.compare(&a), ClockOrdering::Before);
    }

    #[test]
    fn deliverable_message_is_the_senders_next(
        receiver in clock(4),
        sender in 0usize..4,
    ) {
        // Construct the sender's "next" message: one past the receiver's
        // view of the sender, nothing newer elsewhere.
        let mut msg = receiver.clone();
        msg.tick(sender);
        prop_assert!(receiver.deliverable_from(sender, &msg));
        // Skipping one more makes it undeliverable.
        let mut skipped = msg.clone();
        skipped.tick(sender);
        prop_assert!(!receiver.deliverable_from(sender, &skipped));
    }
}

/// Strategy for small random (not necessarily consistent) histories.
fn history(max_ops: usize) -> impl Strategy<Value = History> {
    let op = (0u16..3, 0u32..3, 0u16..3, 0u32..4, prop::bool::ANY);
    proptest::collection::vec(op, 0..max_ops).prop_map(|ops| {
        let mut h = History::new();
        for (i, (proc, var, origin, seq, is_write)) in ops.into_iter().enumerate() {
            let p = ProcId::new(SystemId(0), proc);
            let v = Value::new(ProcId::new(SystemId(0), origin), seq);
            let at = SimTime::from_nanos(i as u64);
            if is_write {
                h.record(OpRecord::write(p, VarId(var), v, at));
            } else {
                h.record(OpRecord::read(p, VarId(var), Some(v), at));
            }
        }
        h
    })
}

proptest! {
    #[test]
    fn projection_contains_all_writes_and_own_reads(h in history(30)) {
        for proc in h.procs() {
            let proj = h.project_for(proc);
            for &id in &proj.ops {
                let op = h.op(id);
                prop_assert!(op.kind.is_write() || op.proc == proc);
            }
            // Nothing missing.
            let expected = h
                .iter()
                .filter(|o| o.kind.is_write() || o.proc == proc)
                .count();
            prop_assert_eq!(proj.ops.len(), expected);
        }
    }

    #[test]
    fn filtered_preserves_relative_order(h in history(30)) {
        let writes = h.filtered(|o| o.kind.is_write());
        let originals: Vec<_> = h.iter().filter(|o| o.kind.is_write()).collect();
        prop_assert_eq!(writes.len(), originals.len());
        for (a, b) in writes.iter().zip(originals) {
            prop_assert_eq!(a.proc, b.proc);
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(a.at, b.at);
        }
    }

    #[test]
    fn reads_from_sources_are_consistent(h in history(30)) {
        let rf = h.reads_from();
        prop_assert_eq!(rf.len(), h.len());
        for (i, src) in rf.iter().enumerate() {
            let op = h.op(cmi_types::OpId(i as u64));
            match src {
                None => prop_assert!(op.kind.is_write()),
                Some(ReadSource::Initial) => {
                    prop_assert_eq!(op.read_value(), Some(None));
                }
                Some(ReadSource::Write(w)) => {
                    let wop = h.op(*w);
                    prop_assert!(wop.kind.is_write());
                    prop_assert_eq!(wop.var, op.var);
                    prop_assert_eq!(wop.written_value(), op.read_value().flatten());
                }
                Some(ReadSource::ThinAir) => {
                    // No write of this (var, value) exists.
                    let val = op.read_value().flatten().unwrap();
                    let exists = h.iter().any(|o| {
                        o.kind.is_write() && o.var == op.var && o.written_value() == Some(val)
                    });
                    prop_assert!(!exists);
                }
            }
        }
    }

    #[test]
    fn program_order_times_are_monotone_in_simulated_recordings(
        times in proptest::collection::vec(0u64..1000, 1..20)
    ) {
        // SimTime ordering sanity used by the history merge.
        let mut sorted = times.clone();
        sorted.sort();
        let ts: Vec<SimTime> = sorted.iter().map(|&n| SimTime::from_nanos(n)).collect();
        for w in ts.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }
}
