//! Randomized-property tests for the core vocabulary: vector-clock laws
//! and history invariants.
//!
//! Each test sweeps a few hundred seeded cases through an inline
//! SplitMix64 stream (the same generator `cmi-sim` uses; inlined here so
//! the base crate keeps zero dev-dependencies on downstream crates).

use cmi_types::{
    ClockOrdering, History, OpRecord, ProcId, ReadSource, SimTime, SystemId, Value, VarId,
    VectorClock,
};

/// Minimal SplitMix64 stream for case generation.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..bound` (`bound > 0`).
    fn below(&mut self, bound: u64) -> u64 {
        (((self.next_u64() >> 11) as u128 * bound as u128) >> 53) as u64
    }
}

const CASES: u64 = 300;

fn clock(rng: &mut Rng, width: usize) -> VectorClock {
    VectorClock::from_components((0..width).map(|_| rng.below(20) as u32).collect())
}

#[test]
fn merge_is_commutative_and_idempotent() {
    for seed in 0..CASES {
        let mut rng = Rng(seed);
        let a = clock(&mut rng, 5);
        let b = clock(&mut rng, 5);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "seed {seed}");
        let mut abb = ab.clone();
        abb.merge(&b);
        assert_eq!(abb, ab, "seed {seed}");
    }
}

#[test]
fn merge_dominates_both_inputs() {
    for seed in 0..CASES {
        let mut rng = Rng(seed);
        let a = clock(&mut rng, 5);
        let b = clock(&mut rng, 5);
        let mut m = a.clone();
        m.merge(&b);
        assert!(a.leq(&m), "seed {seed}");
        assert!(b.leq(&m), "seed {seed}");
    }
}

#[test]
fn compare_is_antisymmetric() {
    for seed in 0..CASES {
        let mut rng = Rng(seed);
        let a = clock(&mut rng, 4);
        let b = clock(&mut rng, 4);
        let expected = match a.compare(&b) {
            ClockOrdering::Before => ClockOrdering::After,
            ClockOrdering::After => ClockOrdering::Before,
            ClockOrdering::Equal => ClockOrdering::Equal,
            ClockOrdering::Concurrent => ClockOrdering::Concurrent,
        };
        assert_eq!(b.compare(&a), expected, "seed {seed}");
    }
}

#[test]
fn tick_strictly_increases() {
    for seed in 0..CASES {
        let mut rng = Rng(seed);
        let mut a = clock(&mut rng, 4);
        let slot = rng.below(4) as usize;
        let before = a.clone();
        a.tick(slot);
        assert_eq!(before.compare(&a), ClockOrdering::Before, "seed {seed}");
    }
}

#[test]
fn deliverable_message_is_the_senders_next() {
    for seed in 0..CASES {
        let mut rng = Rng(seed);
        let receiver = clock(&mut rng, 4);
        let sender = rng.below(4) as usize;
        // Construct the sender's "next" message: one past the receiver's
        // view of the sender, nothing newer elsewhere.
        let mut msg = receiver.clone();
        msg.tick(sender);
        assert!(receiver.deliverable_from(sender, &msg), "seed {seed}");
        // Skipping one more makes it undeliverable.
        let mut skipped = msg.clone();
        skipped.tick(sender);
        assert!(!receiver.deliverable_from(sender, &skipped), "seed {seed}");
    }
}

/// Small random (not necessarily consistent) history of up to `max_ops`.
fn history(rng: &mut Rng, max_ops: u64) -> History {
    let n = rng.below(max_ops);
    let mut h = History::new();
    for i in 0..n {
        let proc = ProcId::new(SystemId(0), rng.below(3) as u16);
        let var = VarId(rng.below(3) as u32);
        let v = Value::new(
            ProcId::new(SystemId(0), rng.below(3) as u16),
            rng.below(4) as u32,
        );
        let at = SimTime::from_nanos(i);
        if rng.below(2) == 0 {
            h.record(OpRecord::write(proc, var, v, at));
        } else {
            h.record(OpRecord::read(proc, var, Some(v), at));
        }
    }
    h
}

#[test]
fn projection_contains_all_writes_and_own_reads() {
    for seed in 0..CASES {
        let mut rng = Rng(seed);
        let h = history(&mut rng, 30);
        for proc in h.procs() {
            let proj = h.project_for(proc);
            for &id in &proj.ops {
                let op = h.op(id);
                assert!(op.kind.is_write() || op.proc == proc, "seed {seed}");
            }
            // Nothing missing.
            let expected = h
                .iter()
                .filter(|o| o.kind.is_write() || o.proc == proc)
                .count();
            assert_eq!(proj.ops.len(), expected, "seed {seed}");
        }
    }
}

#[test]
fn filtered_preserves_relative_order() {
    for seed in 0..CASES {
        let mut rng = Rng(seed);
        let h = history(&mut rng, 30);
        let writes = h.filtered(|o| o.kind.is_write());
        let originals: Vec<_> = h.iter().filter(|o| o.kind.is_write()).collect();
        assert_eq!(writes.len(), originals.len(), "seed {seed}");
        for (a, b) in writes.iter().zip(originals) {
            assert_eq!(a.proc, b.proc, "seed {seed}");
            assert_eq!(a.kind, b.kind, "seed {seed}");
            assert_eq!(a.at, b.at, "seed {seed}");
        }
    }
}

#[test]
fn reads_from_sources_are_consistent() {
    for seed in 0..CASES {
        let mut rng = Rng(seed);
        let h = history(&mut rng, 30);
        let rf = h.reads_from();
        assert_eq!(rf.len(), h.len(), "seed {seed}");
        for (i, src) in rf.iter().enumerate() {
            let op = h.op(cmi_types::OpId(i as u64));
            match src {
                None => assert!(op.kind.is_write(), "seed {seed}"),
                Some(ReadSource::Initial) => {
                    assert_eq!(op.read_value(), Some(None), "seed {seed}");
                }
                Some(ReadSource::Write(w)) => {
                    let wop = h.op(*w);
                    assert!(wop.kind.is_write(), "seed {seed}");
                    assert_eq!(wop.var, op.var, "seed {seed}");
                    assert_eq!(
                        wop.written_value(),
                        op.read_value().flatten(),
                        "seed {seed}"
                    );
                }
                Some(ReadSource::ThinAir) => {
                    // No write of this (var, value) exists.
                    let val = op.read_value().flatten().unwrap();
                    let exists = h.iter().any(|o| {
                        o.kind.is_write() && o.var == op.var && o.written_value() == Some(val)
                    });
                    assert!(!exists, "seed {seed}");
                }
            }
        }
    }
}

#[test]
fn program_order_times_are_monotone_in_simulated_recordings() {
    for seed in 0..CASES {
        let mut rng = Rng(seed);
        let n = 1 + rng.below(19);
        let mut sorted: Vec<u64> = (0..n).map(|_| rng.below(1000)).collect();
        // SimTime ordering sanity used by the history merge.
        sorted.sort_unstable();
        let ts: Vec<SimTime> = sorted.iter().map(|&n| SimTime::from_nanos(n)).collect();
        for w in ts.windows(2) {
            assert!(w[0] <= w[1], "seed {seed}");
        }
    }
}
