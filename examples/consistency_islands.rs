//! The "consistency islands" scenario from the paper's introduction:
//!
//! > "a causal system that has to be implemented on two local area
//! > networks connected with a low-speed point-to-point link. If the
//! > causal protocol used broadcasts updates, in a single system there
//! > could be a large number of messages crossing the point-to-point
//! > link for the same variable update. … it would seem appropriate to
//! > implement one system in each of the local area networks, and use an
//! > IS-protocol via the link to connect the whole system. Then, only
//! > one message crosses the link for each variable update."
//!
//! This example builds both designs over the same workload and compares
//! the traffic that crosses the slow link.
//!
//! ```sh
//! cargo run --example consistency_islands
//! ```

use std::time::Duration;

use cmi::checker::causal;
use cmi::core::{InterconnectBuilder, LinkSpec, SystemSpec};
use cmi::memory::{ProtocolKind, SingleSystem, SystemConfig, WorkloadSpec};
use cmi::sim::ChannelSpec;
use cmi::types::SystemId;

const PER_LAN: usize = 4;
const OPS: u32 = 15;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = WorkloadSpec::write_only(OPS, 3);

    // Design 1: one global causal system spanning both LANs. Every
    // broadcast write sends PER_LAN messages across the slow link.
    // We model it as a single system and count the messages that would
    // cross between the two halves.
    let config = SystemConfig::new(SystemId(0), ProtocolKind::Ahamad, 2 * PER_LAN).with_vars(3);
    let mut global = SingleSystem::build(config, &workload, 7);
    global.run();
    // Channels between slots 0..PER_LAN and PER_LAN..2*PER_LAN cross.
    let mut global_crossings = 0u64;
    for ((from, to), n) in global.sim().stats().channel_table() {
        let cross = (from.index() < PER_LAN) != (to.index() < PER_LAN);
        if cross {
            global_crossings += n;
        }
    }
    let total_writes = (2 * PER_LAN) as u64 * OPS as u64;
    println!("single global system:");
    println!("  {total_writes} writes, {global_crossings} messages crossed the slow link");
    println!(
        "  (= {:.1} crossings per write; paper predicts n/2 = {})",
        global_crossings as f64 / total_writes as f64,
        PER_LAN
    );

    // Design 2: one causal system per LAN, interconnected by the
    // IS-protocols over the slow link.
    let mut builder = InterconnectBuilder::new().with_vars(3);
    let lan_a = builder.add_system(
        SystemSpec::new("LAN-A", ProtocolKind::Ahamad, PER_LAN)
            .with_intra(ChannelSpec::fixed(Duration::from_millis(1))),
    );
    let lan_b = builder.add_system(
        SystemSpec::new("LAN-B", ProtocolKind::Ahamad, PER_LAN)
            .with_intra(ChannelSpec::fixed(Duration::from_millis(1))),
    );
    // The slow point-to-point link: 40 ms.
    builder.link(lan_a, lan_b, LinkSpec::new(Duration::from_millis(40)));
    let mut world = builder.build(7)?;
    let report = world.run(&workload);
    let interconnected_crossings = report.stats().crossings();
    println!("interconnected islands:");
    println!("  {total_writes} writes, {interconnected_crossings} messages crossed the slow link");
    println!(
        "  (= {:.1} crossings per write; paper predicts 1)",
        interconnected_crossings as f64 / total_writes as f64
    );
    println!(
        "reduction: {:.1}×",
        global_crossings as f64 / interconnected_crossings as f64
    );

    // Both designs are causal; the interconnected one is checked here.
    let verdict = causal::check(&report.global_history());
    println!("interconnected system causal: {}", verdict.is_causal());
    assert!(verdict.is_causal());
    Ok(())
}
