//! Interconnecting a protocol this repository has never heard of.
//!
//! The paper's headline flexibility — systems "possibly implemented with
//! different algorithms" — extends to *your* algorithm: implement
//! [`McsProtocol`](cmi::memory::McsProtocol) and hand a factory to
//! [`SystemSpec::custom`](cmi::core::SystemSpec::custom). Here the
//! custom protocol is an instrumented wrapper around the vector-clock
//! protocol that counts its own protocol events — a stand-in for
//! whatever bookkeeping, compression or persistence a real deployment
//! would add.
//!
//! ```sh
//! cargo run --example custom_protocol
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cmi::checker::causal;
use cmi::core::{InterconnectBuilder, LinkSpec, SystemSpec};
use cmi::memory::ahamad::AhamadCausal;
use cmi::memory::{
    McsMsg, McsProtocol, Outbox, PendingUpdate, ProtocolKind, ReadOutcome, WorkloadSpec,
    WriteOutcome,
};
use cmi::types::{ProcId, Value, VarId};

/// A downstream protocol: vector-clock causal memory plus event counters.
#[derive(Debug)]
struct CountingCausal {
    inner: AhamadCausal,
    events: Arc<AtomicU64>,
}

impl McsProtocol for CountingCausal {
    fn proc(&self) -> ProcId {
        self.inner.proc()
    }

    fn read(&self, var: VarId) -> Option<Value> {
        self.inner.read(var)
    }

    fn read_call(&mut self, var: VarId, out: &mut Outbox) -> ReadOutcome {
        self.events.fetch_add(1, Ordering::Relaxed);
        self.inner.read_call(var, out)
    }

    fn write(&mut self, var: VarId, val: Value, out: &mut Outbox) -> WriteOutcome {
        self.events.fetch_add(1, Ordering::Relaxed);
        self.inner.write(var, val, out)
    }

    fn on_message(&mut self, from: ProcId, msg: McsMsg, out: &mut Outbox) {
        self.events.fetch_add(1, Ordering::Relaxed);
        self.inner.on_message(from, msg, out)
    }

    fn next_applicable(&mut self) -> Option<PendingUpdate> {
        self.inner.next_applicable()
    }

    fn apply(&mut self, update: &PendingUpdate, out: &mut Outbox) {
        self.inner.apply(update, out)
    }

    fn satisfies_causal_updating(&self) -> bool {
        self.inner.satisfies_causal_updating()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let events = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&events);

    let mut b = InterconnectBuilder::new().with_vars(3);
    // One stock system…
    let stock = b.add_system(SystemSpec::new("stock", ProtocolKind::Frontier, 3));
    // …interconnected with a system running the custom protocol.
    let custom = b.add_system(SystemSpec::custom(
        "custom",
        3,
        move |system, slot, n, vars| {
            Box::new(CountingCausal {
                inner: AhamadCausal::new(ProcId::new(system, slot), n, vars),
                events: Arc::clone(&counter),
            })
        },
    ));
    b.link(stock, custom, LinkSpec::new(Duration::from_millis(8)));

    let mut world = b.build(7)?;
    let report = world.run(&WorkloadSpec::small().with_ops(12));
    println!("outcome: {:?}", report.outcome());
    println!(
        "custom-protocol events observed: {}",
        events.load(Ordering::Relaxed)
    );
    assert!(
        events.load(Ordering::Relaxed) > 0,
        "the custom protocol really ran"
    );

    let verdict = causal::check(&report.global_history());
    println!("union causal: {}", verdict.is_causal());
    assert!(verdict.is_causal(), "Theorem 1 covers custom protocols too");
    Ok(())
}
