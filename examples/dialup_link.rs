//! Dial-up interconnection (paper Section 1.1): the inter-system channel
//! "does not need to be available all the time" — updates queue while
//! the link is down and flush, in FIFO order, when it comes up.
//!
//! ```sh
//! cargo run --example dialup_link
//! ```

use std::time::Duration;

use cmi::checker::causal;
use cmi::core::{InterconnectBuilder, LinkSpec, SystemSpec};
use cmi::memory::{ProtocolKind, WorkloadSpec};
use cmi::sim::{Availability, ChannelSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The link dials up for 10 ms at the start of every 200 ms period.
    let dialup =
        ChannelSpec::fixed(Duration::from_millis(3)).with_availability(Availability::DutyCycle {
            period: Duration::from_millis(200),
            up: Duration::from_millis(10),
        });
    let mut b = InterconnectBuilder::new().with_vars(3);
    let a = b.add_system(SystemSpec::new("office", ProtocolKind::Ahamad, 3));
    let c = b.add_system(SystemSpec::new("branch", ProtocolKind::Ahamad, 3));
    b.link(a, c, LinkSpec::new(Duration::ZERO).with_channel(dialup));
    let mut world = b.build(5)?;

    let report = world.run(&WorkloadSpec::small().with_ops(30).with_write_fraction(0.5));
    println!("outcome: {:?}", report.outcome());

    // Despite ~95% downtime the union is still causal and every write
    // eventually became visible everywhere.
    let verdict = causal::check(&report.global_history());
    println!("causal: {}", verdict.is_causal());
    assert!(verdict.is_causal());

    // Show the queue-and-burst pattern: per-write worst-case visibility
    // latency in the remote system.
    let mut latencies: Vec<(String, Duration)> = Vec::new();
    for wv in report.write_visibility() {
        let origin = wv.val.origin().system;
        if let Some(lat) = wv
            .visible_at
            .iter()
            .filter(|(p, _)| p.system != origin)
            .map(|(_, t)| t.saturating_since(wv.issued_at))
            .max()
        {
            latencies.push((format!("{}@{}", wv.val, wv.var), lat));
        }
    }
    latencies.sort_by_key(|(_, l)| *l);
    println!(
        "cross-system visibility latency ({} writes):",
        latencies.len()
    );
    println!(
        "  fastest: {:?} (hit an open window)",
        latencies.first().unwrap().1
    );
    println!("  median:  {:?}", latencies[latencies.len() / 2].1);
    println!(
        "  slowest: {:?} (queued through downtime)",
        latencies.last().unwrap().1
    );
    Ok(())
}
