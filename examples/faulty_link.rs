//! A lossy, duplicating, corrupting inter-system link — plus a mid-run
//! IS-process crash — healed by the reliable transport sublayer.
//!
//! The paper assumes reliable FIFO channels between IS-processes
//! (Section 2.2). Here the channel drops 30% of messages, duplicates
//! and corrupts a few more, and the receiving IS-process crashes for
//! 170 ms; retransmission, deduplication, resequencing and the
//! replica resync restore the contract, so the interconnection stays
//! causal.
//!
//! ```sh
//! cargo run --example faulty_link
//! ```

use std::time::Duration;

use cmi::checker::causal;
use cmi::core::{InterconnectBuilder, LinkSpec, ReliableConfig, SystemSpec};
use cmi::memory::{ProtocolKind, WorkloadSpec};
use cmi::sim::{ChannelSpec, FaultSpec};

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hostile channel: 30% loss, 5% duplication, 5% corruption.
    let faults = FaultSpec::none()
        .with_drop(0.30)
        .with_duplication(0.05)
        .with_corruption(0.05);
    let link = LinkSpec::new(ms(2))
        .with_channel(ChannelSpec::fixed(ms(5)).with_faults(faults))
        // The sublayer that wins the loss back: sequence numbers,
        // cumulative acks, timeout retransmission, checksum rejection.
        .with_reliability(ReliableConfig::default().with_rto(ms(40)))
        // And the IS-process on the far side dies at t=150ms, coming
        // back at t=320ms to resync from its MCS replica.
        .with_crash(&[(ms(150), ms(320))]);

    let mut b = InterconnectBuilder::new().with_vars(3);
    let a = b.add_system(SystemSpec::new("alpha", ProtocolKind::Ahamad, 2));
    let c = b.add_system(SystemSpec::new("beta", ProtocolKind::Ahamad, 2));
    b.link(a, c, link);
    let mut world = b.build(11)?;

    let report = world.run(&WorkloadSpec::small().with_ops(25).with_write_fraction(0.6));
    println!("outcome: {:?}", report.outcome());

    // Despite everything the union history is still causal.
    let verdict = causal::check(&report.global_history());
    println!("causal:  {}", verdict.is_causal());
    assert!(verdict.is_causal());

    // What it took: the fault and recovery ledger.
    let m = report.metrics();
    for counter in [
        "channel.a2->a5.dropped",
        "channel.a2->a5.duplicated",
        "channel.a2->a5.corrupted",
        "isp.retransmits",
        "isp.rto_backoffs",
        "isp.acks",
        "isp.dedup_drops",
        "isp.corrupt_rejected",
        "isp.crashes",
        "isp.recoveries",
        "isp.resync_pairs",
        "isp.pairs_lost_in_crash",
    ] {
        println!("{counter:>28}: {}", m.counter(counter));
    }
    Ok(())
}
