//! Interconnecting systems that run *different* MCS protocols — the
//! paper's headline flexibility ("possibly implemented with different
//! algorithms"), including two *sequential* systems whose union is
//! causal but not sequential (Section 1.1).
//!
//! ```sh
//! cargo run --example heterogeneous_protocols
//! ```

use std::time::Duration;

use cmi::checker::{causal, sequential};
use cmi::core::{InterconnectBuilder, LinkSpec, SystemSpec};
use cmi::memory::{OpPlan, ProtocolKind, WorkloadSpec};
use cmi::types::{ProcId, SystemId, Value, VarId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: three different protocols in one chain.
    let mut b = InterconnectBuilder::new().with_vars(3);
    let s0 = b.add_system(SystemSpec::new("vector-clock", ProtocolKind::Ahamad, 2));
    let s1 = b.add_system(SystemSpec::new("dep-frontier", ProtocolKind::Frontier, 2));
    let s2 = b.add_system(SystemSpec::new("sequencer", ProtocolKind::Sequencer, 2));
    b.link(s0, s1, LinkSpec::new(Duration::from_millis(6)));
    b.link(s1, s2, LinkSpec::new(Duration::from_millis(6)));
    let mut world = b.build(99)?;
    let report = world.run(&WorkloadSpec::small().with_ops(18).with_write_fraction(0.4));
    let alpha_t = report.global_history();
    let verdict = causal::check(&alpha_t);
    println!(
        "chain ahamad–frontier–sequencer: {} ops, causal = {}",
        alpha_t.len(),
        verdict.is_causal()
    );
    assert!(verdict.is_causal());

    // Part 2: two *sequentially consistent* systems. Each alone is
    // sequential; the union is causal but not sequential.
    let mut b = InterconnectBuilder::new().with_vars(1);
    let a = b.add_system(SystemSpec::new("SC-A", ProtocolKind::Sequencer, 2));
    let c = b.add_system(SystemSpec::new("SC-B", ProtocolKind::Sequencer, 2));
    b.link(a, c, LinkSpec::new(Duration::from_millis(10)));
    let mut world = b.build(1)?;
    let wa = ProcId::new(SystemId(0), 1);
    let wb = ProcId::new(SystemId(1), 1);
    let ms = Duration::from_millis;
    let script = |writer: ProcId, seq: u32| {
        let mut s = vec![(ms(5), OpPlan::Write(VarId(0), Value::new(writer, seq)))];
        for _ in 0..15 {
            s.push((ms(2), OpPlan::Read(VarId(0))));
        }
        s
    };
    let report = world.run_scripted([(wa, script(wa, 1)), (wb, script(wb, 1))]);

    for sys in [SystemId(0), SystemId(1)] {
        let v = sequential::check(&report.system_history(sys));
        println!(
            "system {} alone sequentially consistent: {}",
            report.system_name(sys),
            v.is_sequential()
        );
    }
    let global = report.global_history();
    let is_causal = causal::check(&global).is_causal();
    let is_seq = sequential::check(&global).is_sequential();
    println!("union causal: {is_causal}, union sequential: {is_seq}");
    assert!(
        is_causal && !is_seq,
        "causal but not sequential, as the paper remarks"
    );
    Ok(())
}
