//! The litmus zoo: canonical memory-model histories checked against all
//! four consistency checkers — a compact map of the hierarchy the paper
//! lives in (sequential ⊂ causal ⊂ PRAM; cache incomparable to causal).
//!
//! ```sh
//! cargo run --example litmus_zoo
//! ```

use cmi::checker::{cache, causal, linearizable, litmus, pram, sequential, session};

fn main() {
    println!(
        "{:<28} {:>7} {:>10} {:>7} {:>5} {:>6} {:>8}",
        "litmus history", "atomic", "sequential", "causal", "PRAM", "cache", "session"
    );
    println!("{}", "-".repeat(79));
    for (name, history) in litmus::all() {
        let mark = |b: bool| if b { "✓" } else { "✗" };
        println!(
            "{:<28} {:>7} {:>10} {:>7} {:>5} {:>6} {:>8}",
            name,
            mark(linearizable::check(&history).is_linearizable()),
            mark(sequential::check(&history).is_sequential()),
            mark(causal::check(&history).is_causal()),
            mark(pram::check(&history).is_pram()),
            mark(cache::check(&history).is_cache_consistent()),
            mark(session::check(&history).is_session()),
        );
    }
    println!(
        "\nThe 'causality violation' row is the behaviour the paper's\n\
         IS-protocols exist to prevent across an interconnection: it is\n\
         PRAM- and cache-consistent — only a *causal* checker sees it."
    );
}
