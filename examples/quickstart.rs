//! Quickstart: interconnect two causal DSM systems and verify that the
//! union is causal (Theorem 1).
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::time::Duration;

use cmi::checker::causal;
use cmi::core::{InterconnectBuilder, LinkSpec, SystemSpec};
use cmi::memory::{ProtocolKind, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two systems, three application processes each, both running the
    // Ahamad et al. causal memory protocol, joined by one bidirectional
    // reliable FIFO channel with 10 ms delay between their IS-processes.
    let mut builder = InterconnectBuilder::new().with_vars(4);
    let a = builder.add_system(SystemSpec::new("A", ProtocolKind::Ahamad, 3));
    let b = builder.add_system(SystemSpec::new("B", ProtocolKind::Ahamad, 3));
    builder.link(a, b, LinkSpec::new(Duration::from_millis(10)));
    let mut world = builder.build(42)?;

    // Each application process issues 20 random reads/writes.
    let report = world.run(&WorkloadSpec::small().with_ops(20));
    println!(
        "run complete: {:?}, {} messages total",
        report.outcome(),
        report.stats().total_messages()
    );

    // α^T: the computation of the interconnected system (IS-process
    // operations excluded, as in the paper's Section 4).
    let alpha_t = report.global_history();
    println!("α^T has {} operations", alpha_t.len());

    // Check causality per Definitions 1–5. The default engine is the
    // polynomial fast path (definitive on the simulator's
    // write-distinct histories); the exhaustive engine additionally
    // produces witness views, so use it here to print one.
    let verdict = causal::check(&alpha_t);
    println!(
        "causal: {} (engine: {})",
        verdict.is_causal(),
        verdict.engine
    );
    let witnessed = causal::check_exhaustive(&alpha_t);
    if let Some((proc, view)) = witnessed.views.iter().next() {
        println!("causal view of {proc} (first 5 ops):");
        for id in view.iter().take(5) {
            println!("  {}", alpha_t.op(*id));
        }
    }
    assert!(verdict.is_causal(), "Theorem 1 must hold");

    // Cross-system propagation really happened: count reads that
    // returned a value originated in the other system.
    let cross_reads = alpha_t
        .iter()
        .filter(
            |op| matches!(op.read_value(), Some(Some(v)) if v.origin().system != op.proc.system),
        )
        .count();
    println!("{cross_reads} reads observed values from the other system");
    Ok(())
}
