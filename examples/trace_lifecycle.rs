//! Causal lineage tracing: follow one write end-to-end across a
//! two-system interconnection.
//!
//! ```sh
//! cargo run --example trace_lifecycle
//! ```
//!
//! The run enables lineage recording, picks the first application write
//! of the global computation and prints its full lifecycle — issue,
//! replica applications, the IS-process read, the link crossing and the
//! remote applications — followed by the per-direction propagation
//! latencies and a Chrome-trace snippet loadable in Perfetto.

use std::time::Duration;

use cmi::core::{InterconnectBuilder, LinkSpec, SystemSpec};
use cmi::memory::{ProtocolKind, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut builder = InterconnectBuilder::new().with_vars(3);
    let a = builder.add_system(SystemSpec::new("A", ProtocolKind::Ahamad, 2));
    let b = builder.add_system(SystemSpec::new("B", ProtocolKind::Ahamad, 2));
    builder.link(a, b, LinkSpec::new(Duration::from_millis(10)));
    builder.enable_lineage(); // off by default; zero cost when disabled
    let mut world = builder.build(7)?;

    let report = world.run(&WorkloadSpec::small().with_ops(6).with_write_fraction(0.5));
    let lineage = report.lineage().expect("enabled above");

    // Every application write has exactly one traced update, identified
    // by (origin system, origin process, per-process sequence number).
    let global = report.global_history();
    let first_write = global.writes()[0];
    let update = global.op(first_write).written_value().unwrap().update_id();

    println!("lifecycle of update {update} (write {first_write}):\n");
    println!("{}", lineage.lifecycle(update));

    println!(
        "hop counts: {:?}  (tree distance from S{})",
        lineage.systems_reached(update),
        update.system()
    );
    println!(
        "link crossings: {} (= m-1 for two systems)\n",
        lineage.crossings(update)
    );

    println!("propagation latency by direction:");
    for (dir, h) in lineage.direction_latencies() {
        println!(
            "  {dir}: {} updates, p50 {:.1} ms, max {:.1} ms",
            h.count(),
            h.quantile(0.5) / 1e6,
            h.max() / 1e6
        );
    }

    // The same record exports as a Chrome trace-event file: write it
    // out and load it at ui.perfetto.dev (or chrome://tracing).
    let trace = lineage.to_chrome_trace();
    let events = trace.get("traceEvents").and_then(|e| e.as_array()).unwrap();
    println!("\nChrome trace: {} events; first event:", events.len());
    println!("{}", events[0].to_pretty());
    Ok(())
}
