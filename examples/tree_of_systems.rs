//! Corollary 1: interconnecting many systems in a tree.
//!
//! Builds five DSM systems running three *different* causal MCS
//! protocols, interconnects them in a tree (no cycles!), runs a random
//! workload, and verifies the union — and every per-system computation —
//! is causal.
//!
//! ```sh
//! cargo run --example tree_of_systems
//! ```

use std::time::Duration;

use cmi::checker::causal;
use cmi::core::{InterconnectBuilder, IsTopology, LinkSpec, SystemSpec};
use cmi::memory::{ProtocolKind, WorkloadSpec};
use cmi::types::SystemId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    //          S0 (ahamad)
    //         /           \
    //   S1 (frontier)   S2 (sequencer)
    //       |               |
    //   S3 (ahamad)     S4 (frontier)
    let mut b = InterconnectBuilder::new()
        .with_vars(4)
        .with_topology(IsTopology::Shared);
    let s0 = b.add_system(SystemSpec::new("root", ProtocolKind::Ahamad, 3));
    let s1 = b.add_system(SystemSpec::new("left", ProtocolKind::Frontier, 2));
    let s2 = b.add_system(SystemSpec::new("right", ProtocolKind::Sequencer, 2));
    let s3 = b.add_system(SystemSpec::new("left-leaf", ProtocolKind::Ahamad, 2));
    let s4 = b.add_system(SystemSpec::new("right-leaf", ProtocolKind::Frontier, 2));
    b.link(s0, s1, LinkSpec::new(Duration::from_millis(8)));
    b.link(s0, s2, LinkSpec::new(Duration::from_millis(12)));
    b.link(s1, s3, LinkSpec::new(Duration::from_millis(5)));
    b.link(s2, s4, LinkSpec::new(Duration::from_millis(5)));
    let mut world = b.build(2024)?;
    println!(
        "built a tree of {} systems, {} MCS-processes total, {} links",
        world.systems().len(),
        world.total_mcs_processes(),
        world.links().len()
    );

    let report = world.run(&WorkloadSpec::small().with_ops(15).with_write_fraction(0.4));
    println!("outcome: {:?}", report.outcome());

    // Theorem 1 + Corollary 1: the union is causal.
    let alpha_t = report.global_history();
    let verdict = causal::check(&alpha_t);
    println!(
        "α^T: {} ops, causal: {} ({} search steps)",
        alpha_t.len(),
        verdict.is_causal(),
        verdict.steps
    );
    assert!(verdict.is_causal());

    // Each α^k too.
    for k in 0..5u16 {
        let alpha_k = report.system_history(SystemId(k));
        let v = causal::check(&alpha_k);
        println!(
            "α^{} ({}): {} ops, causal: {}",
            k,
            report.system_name(SystemId(k)),
            alpha_k.len(),
            v.is_causal()
        );
        assert!(v.is_causal());
    }

    // Values flow end to end: leaf S3 reads values born in leaf S4
    // (three hops: S4 → S2 → S0 → S1 → S3 is four, actually).
    let deepest = alpha_t
        .iter()
        .filter(|op| {
            matches!(op.read_value(), Some(Some(v))
                if op.proc.system == SystemId(3) && v.origin().system == SystemId(4))
        })
        .count();
    println!("reads in left-leaf of values born in right-leaf: {deepest}");
    Ok(())
}
