#!/usr/bin/env bash
# Offline verification: the workspace must build, test and format-check
# without touching the network, and must not grow external dependencies.
set -euo pipefail

cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

echo "==> dependency audit (path-only)"
# Any `foo = "1.2"` / `foo = { version = ... }` line in a [dependencies]
# or [dev-dependencies] section is an external dependency; only
# `.workspace = true` / `path = ...` entries are allowed.
fail=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    bad=$(awk '
        /^\[/ { in_deps = ($0 ~ /dependencies\]$/) }
        in_deps && NF && $0 !~ /^\[/ && $0 !~ /^#/ \
            && $0 !~ /workspace *= *true/ && $0 !~ /path *= */ { print }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "non-path dependency in $manifest:" >&2
        echo "$bad" >&2
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "FAIL: external dependencies found" >&2
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> golden trace-format check (X17 lineage artifact)"
# The Chrome trace-event export and the X17 JSON artifact are consumed
# by external tooling (Perfetto, dashboards); pin their shape here so a
# field rename cannot slip through.
artifact_dir=$(mktemp -d)
trap 'rm -rf "$artifact_dir"' EXIT
./target/release/exp_x17_lineage --json "$artifact_dir/bench_x17.json" > "$artifact_dir/x17.txt"
for key in '"experiment"' '"direction_latencies_ns"' '"hop_latencies_ns"' \
           '"chrome_trace_events"' '"faulted_pair"'; do
    grep -q "$key" "$artifact_dir/bench_x17.json" \
        || { echo "FAIL: $key missing from X17 JSON artifact" >&2; exit 1; }
done
grep -q 'crossings/write' "$artifact_dir/x17.txt" \
    || { echo "FAIL: X17 report lost its crossings table" >&2; exit 1; }

echo "==> runner determinism (serial vs --jobs 8 vs committed output)"
# The parallel experiment runner must be observably invisible; this also
# catches a stale experiments_output.txt after any experiment change.
cargo test --release -q -p cmi-bench --test runner_determinism -- --ignored

echo "==> perf baseline check (X18 vs committed BENCH_PERF.json)"
# Structural fields (event/message counts, interning agreement) must
# match the committed baseline exactly; timing fields only within a
# generous tolerance so slow CI machines stay green. --quick skips the
# minutes-long suite sweep, whose timings are then not compared.
./target/release/exp_x18_perf --quick --json "$artifact_dir/bench_perf.json" \
    --check BENCH_PERF.json > "$artifact_dir/x18.txt"
grep -q 'counter inc (MetricId)' "$artifact_dir/x18.txt" \
    || { echo "FAIL: X18 report lost its throughput table" >&2; exit 1; }

echo "==> checker baseline check (X19 vs committed BENCH_CHECK.json)"
# Structural fields (sweep shape, fast-path definitiveness, violation
# detection, fallback routing, litmus parity) must match the committed
# baseline exactly; per-size wall times only within the tolerance
# window. --quick skips the deep exhaustive timing point.
./target/release/exp_x19_checker --quick --json "$artifact_dir/bench_check.json" \
    --check BENCH_CHECK.json > "$artifact_dir/x19.txt"
grep -q 'wall time per engine' "$artifact_dir/x19.txt" \
    || { echo "FAIL: X19 report lost its scaling table" >&2; exit 1; }

echo "==> monitor baseline check (X20 vs committed BENCH_MONITOR.json)"
# Structural fields (quiet-on-causal, exact-op alerting, bounded state,
# overhead gate, faulted-arm quietness) must match the committed
# baseline exactly; per-size wall times only within the tolerance
# window. --quick times one rep per size instead of a median of three.
./target/release/exp_x20_monitor --quick --json "$artifact_dir/bench_monitor.json" \
    --check BENCH_MONITOR.json > "$artifact_dir/x20.txt"
grep -q 'first-violation alerting' "$artifact_dir/x20.txt" \
    || { echo "FAIL: X20 report lost its alerting table" >&2; exit 1; }

echo "==> live monitor smoke run (cmi-cli run --monitor on the faulty-link scenario)"
# The CLI tap must produce a clean monitor summary on the reliable
# faulted scenario: monitor block present, verdict causal, every op
# checked. CI uploads the summary as an artifact.
./target/release/cmi-cli run crates/cli/scenarios/faulty_link.json --monitor \
    --json "$artifact_dir/monitor_run.json" > "$artifact_dir/monitor_smoke.txt"
grep -q '^\[monitor\]' "$artifact_dir/monitor_smoke.txt" \
    || { echo "FAIL: --monitor run lost its summary block" >&2; exit 1; }
grep -q 'verdict: causal' "$artifact_dir/monitor_smoke.txt" \
    || { echo "FAIL: monitor not quiet on the reliable faulted scenario" >&2; exit 1; }
grep -q '"monitor"' "$artifact_dir/monitor_run.json" \
    || { echo "FAIL: --json artifact lost its monitor block" >&2; exit 1; }
mkdir -p artifacts && cp "$artifact_dir/monitor_smoke.txt" artifacts/monitor_smoke.txt

echo "==> chaos baseline check (X21 vs committed BENCH_CHAOS.json)"
# Structural fields (sweep axes, every-cell causality, delivered/shed
# accounting, byte-identical replay, exact-op stale-read alerting) must
# match the committed baseline exactly; wall times only within the
# tolerance window. --quick times one rep instead of a median of three.
./target/release/exp_x21_chaos --quick --json "$artifact_dir/bench_chaos.json" \
    --check BENCH_CHAOS.json > "$artifact_dir/x21.txt"
grep -q 'churn × partition × loss sweep' "$artifact_dir/x21.txt" \
    || { echo "FAIL: X21 report lost its sweep table" >&2; exit 1; }
grep -q 'replay byte-identical' "$artifact_dir/x21.txt" \
    || { echo "FAIL: X21 composed chaos schedule no longer replays" >&2; exit 1; }

echo "==> chaos smoke run (cmi-cli run --monitor on the churn scenario)"
# Attach a detached system, ride out a seeded partition window, and the
# surviving history must still be causal: monitor verdict causal with
# monitor.violations == 0 in the JSON artifact. CI uploads the summary.
./target/release/cmi-cli run crates/cli/scenarios/chaos_churn.json --monitor \
    --json "$artifact_dir/chaos_run.json" > "$artifact_dir/chaos_smoke.txt"
grep -q 'verdict: causal' "$artifact_dir/chaos_smoke.txt" \
    || { echo "FAIL: monitor not quiet on the chaos churn scenario" >&2; exit 1; }
grep -q '"monitor.violations": 0' "$artifact_dir/chaos_run.json" \
    || { echo "FAIL: chaos run reported violations != 0" >&2; exit 1; }
cp "$artifact_dir/chaos_smoke.txt" artifacts/chaos_smoke.txt

echo "==> telemetry baseline check (X22 vs committed BENCH_TELEMETRY.json)"
# Structural fields (shed burst + recovery visible in the timeline,
# watchdog fired on the shed counter, byte-identical seeded replay,
# sampling adds no engine events) must match the committed baseline
# exactly; wall times and the on/off overhead ratio only within the
# tolerance window. --quick times one rep instead of a median of five.
./target/release/exp_x22_telemetry --quick --json "$artifact_dir/bench_telemetry.json" \
    --check BENCH_TELEMETRY.json > "$artifact_dir/x22.txt"
grep -q 'flight recorder over the X21 chaos regime' "$artifact_dir/x22.txt" \
    || { echo "FAIL: X22 report lost its cadence table" >&2; exit 1; }
grep -q 'seeded replay: timelines byte-identical' "$artifact_dir/x22.txt" \
    || { echo "FAIL: X22 telemetry timeline no longer replays" >&2; exit 1; }

echo "==> telemetry smoke run (cmi-cli run --telemetry-out on the churn scenario)"
# The flight recorder must sample the chaos churn run (>= 1 timeline
# sample behind the JSONL header) without tripping any watchdog: strict
# mode would exit 4 on a spurious alert. CI uploads the timeline.
./target/release/cmi-cli run crates/cli/scenarios/chaos_churn.json \
    --telemetry-every 2 --telemetry-strict \
    --telemetry-out "$artifact_dir/chaos_timeline.jsonl" > "$artifact_dir/telemetry_smoke.txt"
grep -q '^\[telemetry\]' "$artifact_dir/telemetry_smoke.txt" \
    || { echo "FAIL: --telemetry-every run lost its summary block" >&2; exit 1; }
[ "$(wc -l < "$artifact_dir/chaos_timeline.jsonl")" -ge 2 ] \
    || { echo "FAIL: telemetry timeline has no samples" >&2; exit 1; }
cp "$artifact_dir/chaos_timeline.jsonl" artifacts/chaos_timeline.jsonl

echo "==> sharded-engine baseline check (X23 vs committed BENCH_PERF.json)"
# Structural fields (flood event count, planned shard groups,
# replay_identical) must match the committed baseline exactly, the
# committed flood floor (>= 1.7M events/sec) must hold, and wall times
# only within the tolerance window; the shard-speedup gate applies only
# on multi-CPU machines. --quick times one rep instead of a median.
./target/release/exp_x23_shard --quick --json "$artifact_dir/bench_x23.json" \
    --check BENCH_PERF.json > "$artifact_dir/x23.txt"
grep -q 'scheduler flood and shard scaling' "$artifact_dir/x23.txt" \
    || { echo "FAIL: X23 report lost its flood table" >&2; exit 1; }
grep -q 'serial == 1 == 2 == 4 shards' "$artifact_dir/x23.txt" \
    || { echo "FAIL: X23 report lost its replay-identity table" >&2; exit 1; }

echo "==> sharded smoke run (cmi-cli run --shards 2, bytes vs serial)"
# The multi-core engine must be observably invisible: the islands
# scenario (4 disjoint systems -> multiple shard groups) must print the
# exact same bytes with --shards 2 as serially. CI uploads the report.
./target/release/cmi-cli run crates/cli/scenarios/islands.json \
    > "$artifact_dir/islands_serial.txt"
./target/release/cmi-cli run crates/cli/scenarios/islands.json --shards 2 \
    > "$artifact_dir/islands_shards2.txt"
diff "$artifact_dir/islands_serial.txt" "$artifact_dir/islands_shards2.txt" \
    || { echo "FAIL: --shards 2 output diverged from serial" >&2; exit 1; }
cp "$artifact_dir/islands_shards2.txt" artifacts/islands_shards2.txt

echo "==> scale baseline check (X24 vs committed BENCH_X24.json)"
# Structural fields (m = 2..256 sweep axes, closed-form crossing counts,
# flat 9-byte O(1) frame metadata, all-O(1) steady state, monitored
# churn causality, clocked-fallback usage) must match the committed
# baseline exactly; wall times only within the tolerance window.
# --quick times one rep instead of a median of three.
./target/release/exp_x24_scale --quick --json "$artifact_dir/bench_x24.json" \
    --check BENCH_X24.json > "$artifact_dir/x24.txt"
grep -q 'shared IS) m-sweep' "$artifact_dir/x24.txt" \
    || { echo "FAIL: X24 report lost its sweep table" >&2; exit 1; }

echo "==> large-m churn smoke run (cmi-cli run --monitor on the m=64 hub scenario)"
# A 64-system hub-of-hubs expanded from a topology_spec block rides out
# seeded churn with the live monitor on: verdict causal, zero recorded
# violations, and the per-frame O(1) delivery condition never fires.
# CI uploads the summary.
./target/release/cmi-cli run crates/cli/scenarios/hub_churn.json --monitor \
    --json "$artifact_dir/hub_churn_run.json" > "$artifact_dir/hub_churn_smoke.txt"
grep -q 'verdict: causal' "$artifact_dir/hub_churn_smoke.txt" \
    || { echo "FAIL: monitor not quiet on the m=64 hub churn scenario" >&2; exit 1; }
grep -q '"monitor.violations": 0' "$artifact_dir/hub_churn_run.json" \
    || { echo "FAIL: hub churn run reported violations != 0" >&2; exit 1; }
# Untouched counters are omitted from the artifact, so the key only
# appears at all if the O(1) delivery condition ever fired.
if grep -q '"isp.meta_violations"' "$artifact_dir/hub_churn_run.json"; then
    echo "FAIL: hub churn run tripped the frame delivery condition" >&2; exit 1
fi
cp "$artifact_dir/hub_churn_smoke.txt" artifacts/hub_churn_smoke.txt

echo "==> scheduler microbench artifact (heap vs calendar queue)"
# bench_sched compares the pre-PR-9 binary heap against the calendar
# queue at depths 10^2..10^6; the JSON dump rides along as an artifact.
CMI_BENCH_JSON="$PWD/artifacts/bench_sched.json" \
    cargo bench -q -p cmi-bench --bench bench_sched > "$artifact_dir/bench_sched.txt"
grep -q 'sched/calendar/1000000' "$artifact_dir/bench_sched.txt" \
    || { echo "FAIL: bench_sched lost its depth-10^6 case" >&2; exit 1; }

echo "OK: offline build, tests, dependency audit, golden formats, runner determinism, perf, checker, monitor, chaos, telemetry, sharded-engine and scale baselines all passed"
