#!/usr/bin/env bash
# Offline verification: the workspace must build, test and format-check
# without touching the network, and must not grow external dependencies.
set -euo pipefail

cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

echo "==> dependency audit (path-only)"
# Any `foo = "1.2"` / `foo = { version = ... }` line in a [dependencies]
# or [dev-dependencies] section is an external dependency; only
# `.workspace = true` / `path = ...` entries are allowed.
fail=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    bad=$(awk '
        /^\[/ { in_deps = ($0 ~ /dependencies\]$/) }
        in_deps && NF && $0 !~ /^\[/ && $0 !~ /^#/ \
            && $0 !~ /workspace *= *true/ && $0 !~ /path *= */ { print }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "non-path dependency in $manifest:" >&2
        echo "$bad" >&2
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    echo "FAIL: external dependencies found" >&2
    exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "OK: offline build, tests and dependency audit all passed"
