//! # `cmi` — Causal Memory Interconnection
//!
//! Umbrella crate re-exporting the full public API of the reproduction of
//! *"On the interconnection of causal memory systems"* (Fernández,
//! Jiménez, Cholvi; PODC 2000 / JPDC 2004).
//!
//! See the individual crates for detail:
//!
//! * [`types`] — DSM vocabulary: processes, variables, operations,
//!   histories, vector clocks.
//! * [`sim`] — deterministic discrete-event network simulator with
//!   reliable FIFO channels.
//! * [`memory`] — propagation-based MCS protocols (causal and
//!   sequential) and workload generators.
//! * [`checker`] — causal/sequential consistency checkers.
//! * [`core`] — the paper's contribution: IS-protocols interconnecting
//!   causal DSM systems over FIFO links, in pairs and trees.
//! * [`obs`] — zero-dependency observability: metrics registry, JSON
//!   model/serializer/parser, trace-sink ring buffer, bench timing.
//!
//! # Quickstart
//!
//! ```
//! use cmi::core::{InterconnectBuilder, LinkSpec, SystemSpec};
//! use cmi::memory::{ProtocolKind, WorkloadSpec};
//! use cmi::checker::causal;
//! use std::time::Duration;
//!
//! let mut b = InterconnectBuilder::new();
//! let a = b.add_system(SystemSpec::new("A", ProtocolKind::Ahamad, 3));
//! let c = b.add_system(SystemSpec::new("B", ProtocolKind::Ahamad, 3));
//! b.link(a, c, LinkSpec::new(Duration::from_millis(10)));
//! let mut world = b.build(42).unwrap();
//! let report = world.run(&WorkloadSpec::small());
//! let verdict = causal::check_exhaustive(&report.global_history());
//! assert!(verdict.is_causal());
//! ```

#![forbid(unsafe_code)]

pub use cmi_checker as checker;
pub use cmi_core as core;
pub use cmi_memory as memory;
pub use cmi_obs as obs;
pub use cmi_sim as sim;
pub use cmi_types as types;
