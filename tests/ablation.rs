//! Experiment X7 — why the IS-protocols are built the way they are.
//!
//! Section 3 of the paper explains the two load-bearing ingredients:
//! the inter-system channel must be FIFO and the pairs must be sent in
//! the causal order of the writes (Lemma 1). These tests ablate each
//! ingredient and show the checker catching the exact violation the
//! paper's counterexample describes; the un-ablated control stays causal.

use std::time::Duration;

use cmi::checker::{causal, screen};
use cmi::core::{InterconnectBuilder, IsFault, LinkSpec, RunReport, SystemSpec};
use cmi::memory::{OpPlan, ProtocolKind, WorkloadSpec};
use cmi::sim::ChannelSpec;
use cmi::types::{ProcId, SystemId, Value, VarId};

/// Adversarial scripted scenario: p writes x=v1 then y=v2 in quick
/// succession (causally ordered via program order); a process in the
/// other system reads y then x repeatedly. With a correct IS-protocol the
/// reader can never observe v2 in `y` while missing v1 in `x`.
fn adversarial_world(link: LinkSpec, seed: u64) -> RunReport {
    let mut b = InterconnectBuilder::new().with_vars(2);
    let a = b.add_system(SystemSpec::new("A", ProtocolKind::Ahamad, 2));
    let c = b.add_system(SystemSpec::new("B", ProtocolKind::Ahamad, 2));
    b.link(a, c, link);
    let mut world = b.build(seed).unwrap();

    let writer = ProcId::new(SystemId(0), 0);
    let reader = ProcId::new(SystemId(1), 0);
    let v1 = Value::new(writer, 1);
    let v2 = Value::new(writer, 2);
    let ms = Duration::from_millis;
    let mut reader_script = Vec::new();
    // Poll y then x with tight spacing across the propagation window.
    for i in 0..40 {
        reader_script.push((ms(if i == 0 { 1 } else { 2 }), OpPlan::Read(VarId(1))));
        reader_script.push((ms(1), OpPlan::Read(VarId(0))));
    }
    world.run_scripted([
        (
            writer,
            vec![
                (ms(5), OpPlan::Write(VarId(0), v1)),
                (ms(2), OpPlan::Write(VarId(1), v2)),
            ],
        ),
        (reader, reader_script),
    ])
}

#[test]
fn control_with_correct_is_protocol_is_causal() {
    let report = adversarial_world(LinkSpec::new(Duration::from_millis(10)), 1);
    assert!(report.outcome().is_quiescent());
    let verdict = causal::check(&report.global_history());
    assert!(verdict.is_causal(), "control run must be causal");
}

#[test]
fn reordering_isp_breaks_causality_and_is_detected() {
    // Lemma 1 ablation: the IS-process batches pairs and flushes them in
    // reverse order, inverting causally ordered propagations.
    let link = LinkSpec::new(Duration::from_millis(10)).with_fault(IsFault::ReorderBatch {
        window: Duration::from_millis(12),
    });
    let report = adversarial_world(link, 1);
    assert!(report.outcome().is_quiescent());
    let global = report.global_history();
    let verdict = causal::check(&global);
    assert!(
        !verdict.is_causal(),
        "reordered propagation must violate causality"
    );
    // The polynomial screen alone sees it too (stale-read bad pattern
    // family from the paper's Section 3 discussion).
    assert!(
        !screen::screen(&global).is_clean(),
        "the screen should flag the ablated run"
    );
}

#[test]
fn non_fifo_link_breaks_causality_and_is_detected() {
    // Channel-assumption ablation: same IS-protocol, but the link may
    // reorder messages. The two pairs ⟨x,v1⟩⟨y,v2⟩ swap in flight.
    let link = LinkSpec::new(Duration::from_millis(10)).with_channel(ChannelSpec::reordering(
        Duration::ZERO,
        Duration::from_millis(30),
    ));
    // Jitter is random: sweep seeds until the swap materializes; with a
    // 30 ms jitter window over two sends 2 ms apart, most seeds swap.
    let mut violated = false;
    for seed in 0..20 {
        let report = adversarial_world(link.clone(), seed);
        let verdict = causal::check(&report.global_history());
        if !verdict.is_causal() {
            violated = true;
            break;
        }
    }
    assert!(
        violated,
        "a non-FIFO inter-system channel must eventually violate causality"
    );
}

#[test]
fn reordering_isp_inverts_lemma1_send_order() {
    // Direct observation of the Lemma 1 violation in the send log,
    // independent of any reader.
    let link = LinkSpec::new(Duration::from_millis(10)).with_fault(IsFault::ReorderBatch {
        window: Duration::from_millis(12),
    });
    let report = adversarial_world(link, 1);
    let alpha_0 = report.system_history(SystemId(0));
    let isp0 = ProcId::new(SystemId(0), 2);
    let traffic = report
        .link_traffic()
        .iter()
        .find(|t| t.from_isp == isp0)
        .expect("isp0 sent pairs");
    let seq: Vec<_> = traffic
        .pairs
        .iter()
        .map(|p| cmi::checker::AppliedWrite {
            var: p.var,
            val: p.val,
        })
        .collect();
    let check = cmi::checker::trace::check_order_respects_causality(&alpha_0, &seq);
    assert!(
        check.is_err(),
        "the faulty IS-process must send causally ordered writes out of order"
    );
}

#[test]
fn correct_isp_satisfies_lemma1_send_order() {
    let report = adversarial_world(LinkSpec::new(Duration::from_millis(10)), 1);
    let alpha_0 = report.system_history(SystemId(0));
    let isp0 = ProcId::new(SystemId(0), 2);
    for traffic in report.link_traffic().iter().filter(|t| t.from_isp == isp0) {
        let seq: Vec<_> = traffic
            .pairs
            .iter()
            .map(|p| cmi::checker::AppliedWrite {
                var: p.var,
                val: p.val,
            })
            .collect();
        cmi::checker::trace::check_order_respects_causality(&alpha_0, &seq)
            .expect("Lemma 1: send order must respect causal order");
    }
    // Randomized reinforcement across seeds and a real workload.
    for seed in 0..4 {
        let mut b = InterconnectBuilder::new().with_vars(3);
        let a = b.add_system(SystemSpec::new("A", ProtocolKind::Ahamad, 3));
        let c = b.add_system(SystemSpec::new("B", ProtocolKind::Frontier, 3));
        b.link(a, c, LinkSpec::new(Duration::from_millis(6)));
        let mut world = b.build(seed).unwrap();
        let report = world.run(&WorkloadSpec::small().with_ops(12));
        for sys in [SystemId(0), SystemId(1)] {
            let alpha_k = report.system_history(sys);
            for traffic in report
                .link_traffic()
                .iter()
                .filter(|t| report.system_of(t.from_isp) == Some(sys))
            {
                let seq: Vec<_> = traffic
                    .pairs
                    .iter()
                    .map(|p| cmi::checker::AppliedWrite {
                        var: p.var,
                        val: p.val,
                    })
                    .collect();
                cmi::checker::trace::check_order_respects_causality(&alpha_k, &seq)
                    .expect("Lemma 1 under randomized workload");
            }
        }
    }
}
