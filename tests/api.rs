//! Public-API surface tests: the umbrella crate re-exports, JSON round
//! trips of the data types downstream users persist, and report
//! accessors — the contract a downstream user of the library relies on.

use std::time::Duration;

use cmi::checker::{causal, metrics};
use cmi::core::{InterconnectBuilder, LinkSpec, SystemSpec};
use cmi::memory::{ProtocolKind, WorkloadSpec};
use cmi::obs::{Json, ToJson};
use cmi::types::{History, OpRecord, ProcId, SimTime, SystemId, Value, VarId, VectorClock};

#[test]
fn umbrella_re_exports_compose() {
    // Types from every crate interoperate through the umbrella paths.
    let p = ProcId::new(SystemId(0), 0);
    let mut h = History::new();
    h.record(OpRecord::write(
        p,
        VarId(0),
        Value::new(p, 1),
        SimTime::ZERO,
    ));
    assert!(causal::check(&h).is_causal());
    let mut vc = VectorClock::new(2);
    vc.tick(0);
    assert_eq!(vc.get(0), 1);
}

#[test]
fn history_round_trips_through_json() {
    let p = ProcId::new(SystemId(1), 2);
    let mut h = History::new();
    h.record(OpRecord::write(
        p,
        VarId(0),
        Value::new(p, 1),
        SimTime::from_millis(3),
    ));
    h.record(OpRecord::read(
        p,
        VarId(0),
        Some(Value::new(p, 1)),
        SimTime::from_millis(4),
    ));
    h.record(OpRecord::read(p, VarId(1), None, SimTime::from_millis(5)));
    let json = h.to_json().to_compact();
    let back = History::parse_json(&json).expect("deserialize");
    assert_eq!(h, back);
}

#[test]
fn run_report_json_round_trips_through_the_in_tree_parser() {
    let mut b = InterconnectBuilder::new().with_vars(2);
    let a = b.add_system(SystemSpec::new("A", ProtocolKind::Ahamad, 2));
    let c = b.add_system(SystemSpec::new("B", ProtocolKind::Frontier, 2));
    b.link(a, c, LinkSpec::new(Duration::from_millis(5)));
    let mut world = b.build(7).unwrap();
    let report = world.run(&WorkloadSpec::small().with_ops(6));

    let artifact = report.to_json();
    let text = artifact.to_pretty();
    let parsed = Json::parse(&text).expect("report JSON must parse with the in-tree parser");
    assert_eq!(parsed, artifact, "pretty round trip");
    let parsed = Json::parse(&artifact.to_compact()).expect("compact parse");
    assert_eq!(parsed, artifact, "compact round trip");

    // The artifact carries metrics for every instrumented layer.
    let metrics = parsed.get("metrics").expect("metrics section");
    let counters = metrics.get("counters").expect("counters");
    for key in [
        "engine.events_dispatched",
        "engine.messages_sent",
        "traffic.total_messages",
        "protocol.writes_issued",
        "protocol.updates_applied",
        "protocol.updates_propagated",
        "isp.propagate_in",
        "isp.propagate_out",
        "isp.link_pairs_sent",
    ] {
        assert!(
            counters.get(key).and_then(Json::as_u64).unwrap_or(0) > 0,
            "counter {key} must be present and non-zero"
        );
    }
    // At least one per-channel and one per-crossing counter.
    let keys: Vec<&str> = counters
        .as_object()
        .unwrap()
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    assert!(keys.iter().any(|k| k.starts_with("channel.")), "{keys:?}");
    assert!(keys.iter().any(|k| k.starts_with("crossing.")), "{keys:?}");
    // Histogram quantiles for visibility latency.
    let hist = metrics
        .get("histograms")
        .and_then(|h| h.get("visibility.latency_ns"))
        .expect("visibility histogram");
    for q in ["p50", "p95", "p99", "max"] {
        assert!(hist.get(q).and_then(Json::as_f64).is_some(), "missing {q}");
    }
    // The embedded history decodes back to the report's full history.
    let history = History::parse_json(&parsed.get("history").unwrap().to_compact()).unwrap();
    assert_eq!(&history, report.full_history());
}

#[test]
fn registry_channel_counts_match_traffic_stats_exactly() {
    let mut b = InterconnectBuilder::new().with_vars(2);
    let a = b.add_system(SystemSpec::new("A", ProtocolKind::Ahamad, 3));
    let c = b.add_system(SystemSpec::new("B", ProtocolKind::Ahamad, 3));
    b.link(a, c, LinkSpec::new(Duration::from_millis(5)));
    let mut world = b.build(11).unwrap();
    let report = world.run(&WorkloadSpec::small().with_ops(8));

    let m = report.metrics();
    let stats = report.stats();
    assert_eq!(m.counter("traffic.total_messages"), stats.total_messages());
    assert_eq!(m.counter("engine.messages_sent"), stats.total_messages());
    assert_eq!(m.counter("traffic.crossings"), stats.crossings());
    assert_eq!(m.counter("engine.crossings"), stats.crossings());
    for ((from, to), n) in stats.channel_table() {
        assert_eq!(m.counter(&format!("channel.{from}->{to}.messages")), *n);
    }
}

#[test]
fn run_report_accessors_are_consistent() {
    let mut b = InterconnectBuilder::new().with_vars(3);
    let a = b.add_system(SystemSpec::new("left", ProtocolKind::Ahamad, 2));
    let c = b.add_system(SystemSpec::new("right", ProtocolKind::Frontier, 2));
    b.link(a, c, LinkSpec::new(Duration::from_millis(5)));
    let mut world = b.build(5).unwrap();
    assert_eq!(world.systems().len(), 2);
    assert_eq!(world.links().len(), 1);
    assert_eq!(world.total_mcs_processes(), 6); // 4 apps + 2 isps
    assert_eq!(world.n_vars(), 3);

    let report = world.run(&WorkloadSpec::small().with_ops(6));
    // Partition: full = global ∪ isp ops; system histories partition full.
    let full = report.full_history().len();
    let global = report.global_history().len();
    let s0 = report.system_history(SystemId(0)).len();
    let s1 = report.system_history(SystemId(1)).len();
    assert_eq!(s0 + s1, full);
    assert!(global < full, "isp ops excluded from α^T");
    assert_eq!(report.isp_procs().count(), 2);
    assert_eq!(report.system_name(SystemId(0)), "left");
    assert_eq!(
        report.system_of(ProcId::new(SystemId(1), 0)),
        Some(SystemId(1))
    );
    assert!(report.is_isp(ProcId::new(SystemId(0), 2)));
    assert!(!report.is_isp(ProcId::new(SystemId(0), 0)));

    // Every app process has a replica-update log and a response vector.
    for sys in world.systems() {
        for p in &sys.app_procs {
            assert!(!report.updates_of(*p).is_empty());
            let writes_by_p = report
                .global_history()
                .iter()
                .filter(|o| o.proc == *p && o.kind.is_write())
                .count();
            assert_eq!(report.responses_of(*p).len(), writes_by_p);
        }
    }
}

#[test]
fn metrics_reflect_real_concurrency() {
    let mut b = InterconnectBuilder::new().with_vars(3);
    let a = b.add_system(SystemSpec::new("A", ProtocolKind::Ahamad, 3));
    let c = b.add_system(SystemSpec::new("B", ProtocolKind::Ahamad, 3));
    b.link(a, c, LinkSpec::new(Duration::from_millis(5)));
    let mut world = b.build(9).unwrap();
    let report = world.run(&WorkloadSpec::small().with_ops(10));
    let m = metrics::measure(&report.global_history());
    assert_eq!(m.ops, 60);
    assert_eq!(m.procs, 6);
    assert!(
        m.write_concurrency > 0.1,
        "interconnected workloads must be genuinely concurrent, got {}",
        m.write_concurrency
    );
    assert!(m.longest_write_chain >= 1);
}

#[test]
fn write_visibility_covers_every_process() {
    let mut b = InterconnectBuilder::new().with_vars(2);
    let a = b.add_system(SystemSpec::new("A", ProtocolKind::Ahamad, 2));
    let c = b.add_system(SystemSpec::new("B", ProtocolKind::Ahamad, 2));
    b.link(a, c, LinkSpec::new(Duration::from_millis(5)));
    let mut world = b.build(2).unwrap();
    let report = world.run(&WorkloadSpec::small().with_ops(8).with_write_fraction(1.0));
    let total_procs = 6; // 4 apps + 2 isps
    for wv in report.write_visibility() {
        assert_eq!(
            wv.visible_at.len(),
            total_procs,
            "write {} must reach every MCS-process",
            wv.val
        );
        assert!(wv.max_latency() > Duration::ZERO);
    }
}

#[test]
fn dot_export_renders_interconnected_histories() {
    let mut b = InterconnectBuilder::new().with_vars(2);
    let a = b.add_system(SystemSpec::new("A", ProtocolKind::Ahamad, 2));
    let c = b.add_system(SystemSpec::new("B", ProtocolKind::Ahamad, 2));
    b.link(a, c, LinkSpec::new(Duration::from_millis(5)));
    let mut world = b.build(3).unwrap();
    let report = world.run(&WorkloadSpec::small().with_ops(4));
    let dot = cmi::checker::dot::to_dot(&report.global_history(), &[]);
    assert!(dot.contains("digraph"));
    for p in report.global_history().procs() {
        assert!(dot.contains(&format!("cluster_{p}")));
    }
}
