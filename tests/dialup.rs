//! Experiment X9 — Section 1.1's dial-up claim.
//!
//! "An interesting property of our IS-protocols is that the reliable
//! FIFO channel used does not need to be available all the time. If the
//! channel is not available during some period of time, the variable
//! updates can be queued up to be propagated at a later time. This makes
//! the protocol practical even with dial-up connections."
//!
//! We give the inter-system link a duty-cycle availability schedule
//! (up 10 ms out of every 100 ms) and verify: the run completes, every
//! update still crosses, the union is still causal, and propagation
//! latency shows the expected queue-and-flush pattern.

use std::time::Duration;

use cmi::checker::causal;
use cmi::core::{InterconnectBuilder, LinkSpec, RunReport, SystemSpec};
use cmi::memory::{ProtocolKind, WorkloadSpec};
use cmi::sim::{Availability, ChannelSpec};
use cmi::types::SystemId;

fn dialup_run(up: Duration, period: Duration, seed: u64) -> RunReport {
    let channel = ChannelSpec::fixed(Duration::from_millis(2))
        .with_availability(Availability::DutyCycle { period, up });
    let mut b = InterconnectBuilder::new().with_vars(3);
    let a = b.add_system(SystemSpec::new("A", ProtocolKind::Ahamad, 3));
    let c = b.add_system(SystemSpec::new("B", ProtocolKind::Ahamad, 3));
    b.link(a, c, LinkSpec::new(Duration::ZERO).with_channel(channel));
    let mut world = b.build(seed).unwrap();
    world.run(&WorkloadSpec::small().with_ops(25).with_write_fraction(0.5))
}

#[test]
fn dialup_link_still_yields_a_causal_union() {
    for seed in 0..4 {
        let report = dialup_run(Duration::from_millis(10), Duration::from_millis(100), seed);
        assert!(report.outcome().is_quiescent(), "seed {seed}");
        let verdict = causal::check(&report.global_history());
        assert!(verdict.is_causal(), "seed {seed}: {:?}", verdict.verdict);
    }
}

#[test]
fn every_write_eventually_crosses_the_dialup_link() {
    let report = dialup_run(Duration::from_millis(10), Duration::from_millis(100), 7);
    let global = report.global_history();
    // Every write of system A must be applied by every process of
    // system B (propagation is reliable despite the downtime), and vice
    // versa.
    for id in global.writes() {
        let op = global.op(id);
        let val = op.written_value().unwrap();
        let origin = op.proc.system;
        let other = SystemId(1 - origin.0);
        let mut missing = Vec::new();
        for proc in report
            .full_history()
            .procs()
            .into_iter()
            .filter(|p| p.system == other)
        {
            let applied = report
                .updates_of(proc)
                .iter()
                .any(|u| u.var == op.var && u.val == val);
            if !applied {
                missing.push(proc);
            }
        }
        assert!(
            missing.is_empty(),
            "write {op} never reached {missing:?} across the dial-up link"
        );
    }
}

#[test]
fn downtime_queues_and_bursts_instead_of_dropping() {
    // With the link up only at the start of each 100 ms period, pairs
    // sent mid-period all deliver at the next window: their visibility
    // instants in the remote system cluster right after window starts.
    let report = dialup_run(Duration::from_millis(10), Duration::from_millis(100), 3);
    let mut cross_latencies = Vec::new();
    for wv in report.write_visibility() {
        let origin = wv.val.origin().system;
        let remote_max = wv
            .visible_at
            .iter()
            .filter(|(p, _)| p.system != origin)
            .map(|(_, t)| t.saturating_since(wv.issued_at))
            .max();
        if let Some(lat) = remote_max {
            cross_latencies.push(lat);
        }
    }
    assert!(!cross_latencies.is_empty());
    let max = cross_latencies.iter().max().unwrap();
    let min = cross_latencies.iter().min().unwrap();
    // Some writes luckily hit an open window (small latency), others
    // queue for most of a period (close to 100 ms).
    assert!(
        *max > Duration::from_millis(50),
        "expected some queued writes, max latency was {max:?}"
    );
    assert!(
        *min < Duration::from_millis(30),
        "expected some lucky writes, min latency was {min:?}"
    );
}

#[test]
fn always_up_control_has_uniformly_low_latency() {
    let channel = ChannelSpec::fixed(Duration::from_millis(2));
    let mut b = InterconnectBuilder::new().with_vars(3);
    let a = b.add_system(SystemSpec::new("A", ProtocolKind::Ahamad, 3));
    let c = b.add_system(SystemSpec::new("B", ProtocolKind::Ahamad, 3));
    b.link(a, c, LinkSpec::new(Duration::ZERO).with_channel(channel));
    let mut world = b.build(3).unwrap();
    let report = world.run(&WorkloadSpec::small().with_ops(25).with_write_fraction(0.5));
    for wv in report.write_visibility() {
        assert!(
            wv.max_latency() < Duration::from_millis(20),
            "latency {:?} unexpectedly high without downtime",
            wv.max_latency()
        );
    }
}
