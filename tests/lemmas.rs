//! Experiment X10 — the paper's lemmas as trace-level assertions
//! (Figs. 4–5 are precedence diagrams for these proofs).
//!
//! * **Property 1 (Causal Updating)** — at every MCS-process of a causal
//!   protocol, causally ordered writes are applied to the replicas in
//!   causal order.
//! * **Lemma 1** — the IS-processes send causally ordered writes over
//!   the link in causal order.
//! * **Lemmas 3–6 (combined)** — if `op →→ op'` in `α^T`, then the
//!   *corresponding* operations in `α^k` (the same operation for ops
//!   issued in `S^k`; the propagation `prop(op)` — the IS-process write
//!   of the same value — for writes issued in the other system) are
//!   causally ordered in `α^k` too.

use std::collections::HashMap;
use std::time::Duration;

use cmi::checker::trace::check_order_respects_causality;
use cmi::checker::{AppliedWrite, CausalOrder};
use cmi::core::{InterconnectBuilder, LinkSpec, RunReport, SystemSpec};
use cmi::memory::{ProtocolKind, WorkloadSpec};
use cmi::types::{History, OpId, OpKind, ProcId, SystemId, Value, VarId};

fn run_pair(pa: ProtocolKind, pb: ProtocolKind, seed: u64) -> RunReport {
    let mut b = InterconnectBuilder::new().with_vars(3);
    let a = b.add_system(SystemSpec::new("A", pa, 3));
    let c = b.add_system(SystemSpec::new("B", pb, 3));
    b.link(a, c, LinkSpec::new(Duration::from_millis(7)));
    let mut world = b.build(seed).unwrap();
    world.run(&WorkloadSpec::small().with_ops(12).with_write_fraction(0.5))
}

#[test]
fn property1_causal_updating_holds_at_every_process() {
    for seed in 0..4 {
        let report = run_pair(ProtocolKind::Ahamad, ProtocolKind::Frontier, seed);
        for sys in [SystemId(0), SystemId(1)] {
            let alpha_k = report.system_history(sys);
            for proc in alpha_k.procs() {
                let updates: Vec<AppliedWrite> = report
                    .updates_of(proc)
                    .iter()
                    .map(|u| AppliedWrite {
                        var: u.var,
                        val: u.val,
                    })
                    .collect();
                check_order_respects_causality(&alpha_k, &updates).unwrap_or_else(|e| {
                    panic!("Causal Updating violated at {proc} (seed {seed}): {e}")
                });
            }
        }
    }
}

#[test]
fn lemma1_send_order_respects_causal_order() {
    for seed in 0..4 {
        let report = run_pair(ProtocolKind::Frontier, ProtocolKind::Sequencer, seed);
        for traffic in report.link_traffic() {
            let sys = report.system_of(traffic.from_isp).unwrap();
            let alpha_k = report.system_history(sys);
            let seq: Vec<AppliedWrite> = traffic
                .pairs
                .iter()
                .map(|p| AppliedWrite {
                    var: p.var,
                    val: p.val,
                })
                .collect();
            check_order_respects_causality(&alpha_k, &seq).unwrap_or_else(|e| {
                panic!(
                    "Lemma 1 violated on link {} → {} (seed {seed}): {e}",
                    traffic.from_isp, traffic.to_isp
                )
            });
        }
    }
}

/// Finds, for each operation of `alpha_t`, its corresponding operation
/// in `alpha_k` (Section 4's correspondence): identity for operations of
/// system `k`'s processes, `prop(op)` (the IS-process write of the same
/// `(var, value)`) for writes of the other system, `None` for foreign
/// reads.
fn correspondence(
    alpha_t: &History,
    alpha_k: &History,
    k: SystemId,
    is_isp: impl Fn(ProcId) -> bool,
) -> HashMap<OpId, OpId> {
    // Key local (identity) matches by (proc, kind, var, value, at).
    let mut by_identity: HashMap<(ProcId, VarId, OpKind, cmi::types::SimTime), OpId> =
        HashMap::new();
    // Key propagations by (var, value) of the isp write.
    let mut prop_write: HashMap<(VarId, Value), OpId> = HashMap::new();
    for op in alpha_k.iter() {
        by_identity.insert((op.proc, op.var, op.kind, op.at), op.id);
        if is_isp(op.proc) {
            if let OpKind::Write { value } = op.kind {
                prop_write.insert((op.var, value), op.id);
            }
        }
    }
    let mut map = HashMap::new();
    for op in alpha_t.iter() {
        if op.proc.system == k {
            if let Some(&id) = by_identity.get(&(op.proc, op.var, op.kind, op.at)) {
                map.insert(op.id, id);
            }
        } else if let OpKind::Write { value } = op.kind {
            if let Some(&id) = prop_write.get(&(op.var, value)) {
                map.insert(op.id, id);
            }
        }
    }
    map
}

#[test]
fn lemmas_3_to_6_causal_order_transfers_into_each_system() {
    for seed in 0..3 {
        let report = run_pair(ProtocolKind::Ahamad, ProtocolKind::Ahamad, 50 + seed);
        let alpha_t = report.global_history();
        let co_t = CausalOrder::build(&alpha_t);
        for k in [SystemId(0), SystemId(1)] {
            let alpha_k = report.system_history(k);
            let co_k = CausalOrder::build(&alpha_k);
            let map = correspondence(&alpha_t, &alpha_k, k, |p| report.is_isp(p));
            let ids: Vec<OpId> = map.keys().copied().collect();
            for &a in &ids {
                for &b in &ids {
                    if a != b && co_t.precedes(a, b) {
                        let (ka, kb) = (map[&a], map[&b]);
                        if ka == kb {
                            continue;
                        }
                        assert!(
                            co_k.precedes(ka, kb),
                            "seed {seed}: {} →→ {} in α^T but {} ¬→→ {} in α^{}",
                            alpha_t.op(a),
                            alpha_t.op(b),
                            alpha_k.op(ka),
                            alpha_k.op(kb),
                            k.0
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn prop_writes_carry_the_original_values() {
    // The foundation of Definition 7 (γ construction): prop(op) writes
    // exactly the value orig(op) wrote.
    let report = run_pair(ProtocolKind::Ahamad, ProtocolKind::Frontier, 9);
    let alpha_t = report.global_history();
    for k in [SystemId(0), SystemId(1)] {
        let alpha_k = report.system_history(k);
        for op in alpha_k.iter() {
            if report.is_isp(op.proc) {
                if let OpKind::Write { value } = op.kind {
                    // There must be exactly one original write of this
                    // value in α^T, issued in the *other* system.
                    let originals: Vec<_> = alpha_t
                        .iter()
                        .filter(|o| o.kind == OpKind::Write { value } && o.var == op.var)
                        .collect();
                    assert_eq!(originals.len(), 1, "exactly one orig(op) for {op}");
                    assert_ne!(
                        originals[0].proc.system, k,
                        "prop(op) must originate in the other system"
                    );
                }
            }
        }
    }
}
