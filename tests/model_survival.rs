//! Integration view of the model-survival matrix (experiments X8, X12,
//! X13) through the umbrella crate: which consistency models survive
//! IS-protocol interconnection.
//!
//! | model | survives? |
//! |---|---|
//! | atomic | ✗ |
//! | sequential | ✗ |
//! | causal | ✓ (Theorem 1) |
//! | PRAM | ✓ |
//! | cache | ✗ |

use std::time::Duration;

use cmi::checker::{cache, causal, linearizable, pram, sequential};
use cmi::core::{InterconnectBuilder, LinkSpec, RunReport, SystemSpec};
use cmi::memory::{OpPlan, ProtocolKind, WorkloadSpec};
use cmi::types::{ProcId, SystemId, Value, VarId};

fn concurrent_writers_run(protocol: ProtocolKind, seed: u64) -> RunReport {
    let mut b = InterconnectBuilder::new().with_vars(1);
    let a = b.add_system(SystemSpec::new("A", protocol, 2));
    let c = b.add_system(SystemSpec::new("B", protocol, 2));
    b.link(a, c, LinkSpec::new(Duration::from_millis(10)));
    let mut world = b.build(seed).unwrap();
    let wa = ProcId::new(SystemId(0), 1);
    let wb = ProcId::new(SystemId(1), 1);
    let ms = Duration::from_millis;
    let script = |w: ProcId| {
        let mut s = vec![(ms(5), OpPlan::Write(VarId(0), Value::new(w, 1)))];
        for _ in 0..12 {
            s.push((ms(2), OpPlan::Read(VarId(0))));
        }
        s
    };
    world.run_scripted([(wa, script(wa)), (wb, script(wb))])
}

#[test]
fn atomic_does_not_survive_but_causality_does() {
    let report = concurrent_writers_run(ProtocolKind::Atomic, 1);
    let global = report.global_history();
    assert!(causal::check(&global).is_causal());
    assert!(!linearizable::check(&global).is_linearizable());
}

#[test]
fn sequential_does_not_survive_but_causality_does() {
    let report = concurrent_writers_run(ProtocolKind::Sequencer, 1);
    let global = report.global_history();
    assert!(causal::check(&global).is_causal());
    assert!(!sequential::check(&global).is_sequential());
}

#[test]
fn cache_does_not_survive() {
    let report = concurrent_writers_run(ProtocolKind::VarSeq, 1);
    let global = report.global_history();
    for k in [SystemId(0), SystemId(1)] {
        assert!(
            cache::check(&report.system_history(k)).is_cache_consistent(),
            "each var-seq island is cache consistent"
        );
    }
    assert!(!cache::check(&global).is_cache_consistent());
}

#[test]
fn pram_survives_across_random_runs() {
    for seed in 0..4 {
        let mut b = InterconnectBuilder::new().with_vars(2);
        let a = b.add_system(SystemSpec::new("A", ProtocolKind::EagerFifo, 3));
        let c = b.add_system(SystemSpec::new("B", ProtocolKind::EagerFifo, 3));
        b.link(a, c, LinkSpec::new(Duration::from_millis(7)));
        let mut world = b.build(seed).unwrap();
        let report = world.run(&WorkloadSpec::small().with_ops(10));
        assert!(
            pram::check(&report.global_history()).is_pram(),
            "PRAM union, seed {seed}"
        );
    }
}

#[test]
fn causal_survives_for_every_causal_protocol() {
    for protocol in ProtocolKind::CAUSAL_KINDS {
        let report = concurrent_writers_run(protocol, 3);
        assert!(report.outcome().is_quiescent(), "{protocol}");
        let verdict = causal::check(&report.global_history());
        assert!(verdict.is_causal(), "{protocol}: {:?}", verdict.verdict);
    }
}
