//! The paper's own worked scenarios, encoded as concrete histories.
//!
//! * Section 3's motivating counterexample (why `Propagate_out` reads).
//! * Fig. 4's precedence structure (proof of Lemma 3): a causal sequence
//!   crossing systems and back, with the IS-process reads forging the
//!   in-system causal chain.
//! * Fig. 5's precedence structure (proof of Lemma 6).
//!
//! These tests pin the checker to the paper's reasoning: each scenario's
//! causal relations must come out exactly as the proofs claim.

use cmi::checker::{causal, CausalOrder};
use cmi::types::{History, OpId, OpRecord, ProcId, SimTime, SystemId, Value, VarId};

fn p(sys: u16, i: u16) -> ProcId {
    ProcId::new(SystemId(sys), i)
}

fn t(n: u64) -> SimTime {
    SimTime::from_nanos(n)
}

fn w(h: &mut History, proc: ProcId, var: u32, val: Value, at: u64) -> OpId {
    h.record(OpRecord::write(proc, VarId(var), val, t(at)))
}

fn r(h: &mut History, proc: ProcId, var: u32, val: Option<Value>, at: u64) -> OpId {
    h.record(OpRecord::read(proc, VarId(var), val, t(at)))
}

/// Section 3: "suppose w_i^k(x)v is issued in S^k and that after its
/// propagation … some process j in S^k̄ issues r(x)v and w(y)u … Then,
/// without violating the causality of S^k, some process l in S^k could
/// issue first r(x)u and then r(x)v" — wait, the paper's example is on
/// one variable: r_l(x)u then r_l(x)v with w(x)v →→ w(x)u. Encoded as
/// the global computation the broken interconnection would produce.
#[test]
fn section3_counterexample_is_exactly_what_the_checker_rejects() {
    let mut h = History::new();
    let v = Value::new(p(0, 0), 1);
    let u = Value::new(p(1, 0), 1);
    // S0's process i writes x = v.
    let w_v = w(&mut h, p(0, 0), 0, v, 1);
    // After propagation, S1's process j reads v and overwrites with u.
    let r_v = r(&mut h, p(1, 0), 0, Some(v), 10);
    let w_u = w(&mut h, p(1, 0), 0, u, 11);
    // S0's process l reads u first, then v — the forbidden pattern.
    let r_u = r(&mut h, p(0, 1), 0, Some(u), 20);
    let r_v2 = r(&mut h, p(0, 1), 0, Some(v), 21);

    // The causal relations the paper derives: w(x)v →→ w(x)u.
    let co = CausalOrder::build(&h);
    assert!(co.precedes(w_v, r_v));
    assert!(co.precedes(w_v, w_u), "transitively via j's read");
    assert!(co.precedes(r_u, r_v2), "l's program order");

    // And the verdict: not causal, as Section 3 argues.
    assert!(!causal::check(&h).is_causal());
}

/// Fig. 4 (proof of Lemma 3): the causal chain
/// `w_j^k(x)v → r_isp^k(x)v → (send) … (receive) → w_isp^k(y)u → r_s^k(y)u`
/// — the IS-process's Propagate_out read and Propagate_in write splice
/// consecutive subsequences of a causal sequence back into `α^k`.
#[test]
fn fig4_is_reads_and_writes_splice_the_causal_chain() {
    let mut h = History::new();
    let isp = p(0, 9);
    let v = Value::new(p(0, 0), 1);
    let u = Value::new(p(1, 0), 1);

    // last(subSeq_d^k) = w_j^k(x)v.
    let w_v = w(&mut h, p(0, 0), 0, v, 1);
    // Propagate_out's read r_isp(x)v (recorded by the host at upcall).
    let r_isp_v = r(&mut h, isp, 0, Some(v), 2);
    // … the pair travels to S^1, where subSeq_{d+1} happens, and comes
    // back as Propagate_in's write w_isp(y)u …
    let w_isp_u = w(&mut h, isp, 1, u, 10);
    // first(subSeq_{d+2}^k) = r_s^k(y)u.
    let r_s_u = r(&mut h, p(0, 1), 1, Some(u), 11);

    let co = CausalOrder::build(&h);
    // The paper's chain: w_j(x)v →→ r_isp(x)v →→ w_isp(y)u →→ r_s(y)u.
    assert!(co.precedes(w_v, r_isp_v), "writes-into");
    assert!(co.precedes(r_isp_v, w_isp_u), "isp program order");
    assert!(co.precedes(w_isp_u, r_s_u), "writes-into");
    // Hence transitively the endpoints:
    assert!(
        co.precedes(w_v, r_s_u),
        "Lemma 3's conclusion: the chain closes inside α^k"
    );
    // Without the isp's read, the chain would break:
    let mut h2 = History::new();
    let w_v2 = w(&mut h2, p(0, 0), 0, v, 1);
    let w_isp_u2 = w(&mut h2, isp, 1, u, 10);
    let co2 = CausalOrder::build(&h2);
    assert!(
        co2.concurrent(w_v2, w_isp_u2),
        "no Propagate_out read ⇒ no causal edge — the reads are load-bearing"
    );
}

/// Fig. 5 (proof of Lemma 6): `op →→ w_j^k(y)u → r_isp^k(y)u` and the
/// later `prop(op') = w_isp^k(x)v` is program-ordered after that read,
/// so `op →→ prop(op')` in `α^k`.
#[test]
fn fig5_propagation_is_ordered_after_the_outgoing_read() {
    let mut h = History::new();
    let isp = p(0, 9);
    let u = Value::new(p(0, 0), 1); // w_j^k(y)u
    let v = Value::new(p(1, 0), 1); // op' = w^k̄(x)v, propagated back

    let w_u = w(&mut h, p(0, 0), 1, u, 1);
    // Propagate_out reads u before sending it to S^k̄.
    let r_isp_u = r(&mut h, isp, 1, Some(u), 2);
    // Later the pair ⟨x,v⟩ arrives from S^k̄ (whose writer saw u) and the
    // isp issues prop(op') = w_isp(x)v.
    let w_isp_v = w(&mut h, isp, 0, v, 20);

    let co = CausalOrder::build(&h);
    assert!(co.precedes(w_u, r_isp_u));
    assert!(co.precedes(r_isp_u, w_isp_v), "isp program order");
    assert!(
        co.precedes(w_u, w_isp_v),
        "Lemma 6's conclusion: op →→ prop(op')"
    );
    // The whole scenario is itself causal.
    assert!(causal::check(&h).is_causal());
}
