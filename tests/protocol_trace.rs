//! Experiment X1 — Figs. 1–3 as an executable trace.
//!
//! Fig. 3 of the paper diagrams one full protocol exchange:
//!
//! ```text
//! MCS-process of isp^k          isp^k              isp^k̄ (other system)
//!   post_update(x,v)  ──▶  Propagate_out: r(x)v, send ⟨x,v⟩  ──▶ …
//!   …  ◀── write(y,u) ◀──  Propagate_in(y,u)  ◀── ⟨y,u⟩ received
//! ```
//!
//! This test scripts a single write in each direction and asserts the
//! exact event sequence — upcall, IS-read, pair transmission, remote
//! Propagate_in write — in the simulator trace and the recorded
//! computation.

use std::time::Duration;

use cmi::core::{InterconnectBuilder, LinkSpec, SystemSpec};
use cmi::memory::{OpPlan, ProtocolKind};
use cmi::sim::TraceKind;
use cmi::types::{OpKind, ProcId, SystemId, Value, VarId};

#[test]
fn fig3_task_scheme_replays_in_the_trace() {
    let mut b = InterconnectBuilder::new().with_vars(2);
    b.enable_trace();
    let a = b.add_system(SystemSpec::new("A", ProtocolKind::Ahamad, 2));
    let c = b.add_system(SystemSpec::new("B", ProtocolKind::Ahamad, 2));
    b.link(a, c, LinkSpec::new(Duration::from_millis(10)));
    let mut world = b.build(1).unwrap();

    let writer = ProcId::new(SystemId(0), 0);
    let v = Value::new(writer, 1);
    let report = world.run_scripted([(
        writer,
        vec![(Duration::from_millis(2), OpPlan::Write(VarId(0), v))],
    )]);
    assert!(report.outcome().is_quiescent());

    // The trace must contain, in order:
    //  1. the post_update(x0, v) note at isp^0,
    //  2. the ⟨x0,v⟩ link send,
    //  3. the Propagate_in(x0, v) note at isp^1.
    let notes: Vec<(usize, &str)> = report
        .trace()
        .iter()
        .enumerate()
        .filter_map(|(i, e)| match &e.kind {
            TraceKind::Note { text, .. } => Some((i, text.as_str())),
            _ => None,
        })
        .collect();
    let post_pos = notes
        .iter()
        .find(|(_, t)| t.starts_with("post_update(x0"))
        .map(|(i, _)| *i)
        .expect("post_update upcall in trace");
    let prop_in_pos = notes
        .iter()
        .find(|(_, t)| t.starts_with("Propagate_in(x0"))
        .map(|(i, _)| *i)
        .expect("Propagate_in in trace");
    let link_send_pos = report
        .trace()
        .iter()
        .position(|e| matches!(&e.kind, TraceKind::Sent { msg, .. } if msg.contains("Link")))
        .expect("link pair transmission in trace");
    assert!(post_pos < link_send_pos, "upcall precedes the send");
    assert!(link_send_pos < prop_in_pos, "send precedes Propagate_in");
}

#[test]
fn propagate_out_read_and_propagate_in_write_are_recorded_ops() {
    let mut b = InterconnectBuilder::new().with_vars(2);
    let a = b.add_system(SystemSpec::new("A", ProtocolKind::Ahamad, 2));
    let c = b.add_system(SystemSpec::new("B", ProtocolKind::Ahamad, 2));
    b.link(a, c, LinkSpec::new(Duration::from_millis(10)));
    let mut world = b.build(1).unwrap();

    let writer = ProcId::new(SystemId(0), 0);
    let v = Value::new(writer, 1);
    let report = world.run_scripted([(
        writer,
        vec![(Duration::from_millis(2), OpPlan::Write(VarId(0), v))],
    )]);

    let isp0 = ProcId::new(SystemId(0), 2);
    let isp1 = ProcId::new(SystemId(1), 2);
    let full = report.full_history();

    // isp^0 issued the Propagate_out read r(x0)v (Fig. 1: "it reads the
    // value v from x").
    let isp0_ops: Vec<_> = full.iter().filter(|o| o.proc == isp0).collect();
    assert_eq!(isp0_ops.len(), 1);
    assert_eq!(isp0_ops[0].kind, OpKind::Read { value: Some(v) });
    assert_eq!(isp0_ops[0].var, VarId(0));

    // isp^1 issued the Propagate_in write w(x0)v of the *same* value.
    let isp1_ops: Vec<_> = full.iter().filter(|o| o.proc == isp1).collect();
    assert_eq!(isp1_ops.len(), 1);
    assert_eq!(isp1_ops[0].kind, OpKind::Write { value: v });

    // And α^T contains exactly one write of v (the original): IS ops are
    // excluded per Section 4.
    let global = report.global_history();
    let writes_of_v: Vec<_> = global
        .iter()
        .filter(|o| o.kind == OpKind::Write { value: v })
        .collect();
    assert_eq!(writes_of_v.len(), 1);
    assert_eq!(writes_of_v[0].proc, writer);
}

#[test]
fn variant2_adds_the_pre_propagate_read() {
    let mut b = InterconnectBuilder::new()
        .with_vars(2)
        .force_pre_propagate();
    let a = b.add_system(SystemSpec::new("A", ProtocolKind::Ahamad, 2));
    let c = b.add_system(SystemSpec::new("B", ProtocolKind::Ahamad, 2));
    b.link(a, c, LinkSpec::new(Duration::from_millis(10)));
    let mut world = b.build(1).unwrap();

    let writer = ProcId::new(SystemId(0), 0);
    let v1 = Value::new(writer, 1);
    let v2 = Value::new(writer, 2);
    let ms = Duration::from_millis;
    let report = world.run_scripted([(
        writer,
        vec![
            (ms(2), OpPlan::Write(VarId(0), v1)),
            (ms(2), OpPlan::Write(VarId(0), v2)),
        ],
    )]);

    // Fig. 2: Pre_Propagate_out reads the *previous* value s, then
    // Propagate_out reads the new one. For the second update the isp's
    // reads must be r(x)v1 then r(x)v2.
    let isp0 = ProcId::new(SystemId(0), 2);
    let reads: Vec<Option<Value>> = report
        .full_history()
        .iter()
        .filter(|o| o.proc == isp0)
        .filter_map(|o| o.read_value())
        .collect();
    assert_eq!(
        reads,
        vec![None, Some(v1), Some(v1), Some(v2)],
        "pre/post reads: r(x)⊥, r(x)v1, then r(x)v1, r(x)v2"
    );
}

#[test]
fn no_upcall_and_no_echo_for_is_process_writes() {
    // "The update of a replica due to a write operation issued by the
    // IS-process does not generate any upcall. … a pair received from
    // isp^k̄ cannot be sent back."
    let mut b = InterconnectBuilder::new().with_vars(2);
    let a = b.add_system(SystemSpec::new("A", ProtocolKind::Ahamad, 2));
    let c = b.add_system(SystemSpec::new("B", ProtocolKind::Ahamad, 2));
    b.link(a, c, LinkSpec::new(Duration::from_millis(10)));
    let mut world = b.build(1).unwrap();
    let writer = ProcId::new(SystemId(0), 0);
    let v = Value::new(writer, 1);
    let report = world.run_scripted([(
        writer,
        vec![(Duration::from_millis(2), OpPlan::Write(VarId(0), v))],
    )]);

    // Exactly one pair crosses, in one direction; nothing echoes back.
    let total_pairs: usize = report.link_traffic().iter().map(|t| t.pairs.len()).sum();
    assert_eq!(total_pairs, 1, "one write ⇒ one pair over the link");
    let isp1 = ProcId::new(SystemId(1), 2);
    let echoed = report
        .link_traffic()
        .iter()
        .find(|t| t.from_isp == isp1)
        .map(|t| t.pairs.len())
        .unwrap_or(0);
    assert_eq!(echoed, 0, "isp^1 must not send the pair back");
}
