//! Experiment X8 — Section 1.1's remark on sequential systems.
//!
//! "Note that the sequential memory model … is in fact causal. Hence,
//! these results also apply to it, i.e., two sequential systems … can be
//! interconnected so that the overall resulting system is causal.
//! Clearly, the system obtained most possibly will not be sequential."
//!
//! We interconnect two sequencer-based (sequentially consistent) systems
//! and exhibit a run whose union is causal but **not** sequentially
//! consistent, while each constituent system's own computation remains
//! sequentially consistent.

use std::time::Duration;

use cmi::checker::{causal, sequential};
use cmi::core::{InterconnectBuilder, LinkSpec, RunReport, SystemSpec};
use cmi::memory::{OpPlan, ProtocolKind, WorkloadSpec};
use cmi::types::{ProcId, SystemId, Value, VarId};

/// Both systems write concurrently to the same variable and poll it.
/// Each system applies its local write first and the remote one after
/// link propagation, so readers in the two systems observe the two
/// writes in opposite orders — causal, famously not sequential.
fn opposite_orders_run(seed: u64) -> RunReport {
    let mut b = InterconnectBuilder::new().with_vars(1);
    let a = b.add_system(SystemSpec::new("A", ProtocolKind::Sequencer, 2));
    let c = b.add_system(SystemSpec::new("B", ProtocolKind::Sequencer, 2));
    b.link(a, c, LinkSpec::new(Duration::from_millis(10)));
    let mut world = b.build(seed).unwrap();

    let wa = ProcId::new(SystemId(0), 1);
    let wb = ProcId::new(SystemId(1), 1);
    let va = Value::new(wa, 1);
    let vb = Value::new(wb, 1);
    let ms = Duration::from_millis;
    let write_then_poll = |v: Value| {
        let mut script = vec![(ms(5), OpPlan::Write(VarId(0), v))];
        for _ in 0..15 {
            script.push((ms(2), OpPlan::Read(VarId(0))));
        }
        script
    };
    world.run_scripted([(wa, write_then_poll(va)), (wb, write_then_poll(vb))])
}

#[test]
fn each_constituent_system_is_sequentially_consistent() {
    let report = opposite_orders_run(1);
    assert!(report.outcome().is_quiescent());
    for sys in [SystemId(0), SystemId(1)] {
        let alpha_k = report.system_history(sys);
        let verdict = sequential::check(&alpha_k);
        assert!(
            verdict.is_sequential(),
            "α^{sys} of a sequencer system must be sequentially consistent"
        );
    }
}

#[test]
fn the_union_is_causal_but_not_sequential() {
    let report = opposite_orders_run(1);
    let global = report.global_history();

    // Sanity: both writers observed both values (opposite orders).
    let reads_of = |proc: ProcId| -> Vec<Option<Value>> {
        global
            .iter()
            .filter(|op| op.proc == proc)
            .filter_map(|op| op.read_value())
            .collect()
    };
    let wa = ProcId::new(SystemId(0), 1);
    let wb = ProcId::new(SystemId(1), 1);
    let va = Value::new(wa, 1);
    let vb = Value::new(wb, 1);
    assert!(reads_of(wa).contains(&Some(va)) && reads_of(wa).contains(&Some(vb)));
    assert!(reads_of(wb).contains(&Some(vb)) && reads_of(wb).contains(&Some(va)));

    let causal_verdict = causal::check(&global);
    assert!(causal_verdict.is_causal(), "Theorem 1: the union is causal");

    let seq_verdict = sequential::check(&global);
    assert_eq!(
        seq_verdict,
        sequential::SequentialVerdict::NotSequential,
        "the union must not be sequentially consistent"
    );
}

#[test]
fn randomized_sequencer_interconnections_remain_causal() {
    for seed in 0..5 {
        let mut b = InterconnectBuilder::new().with_vars(2);
        let a = b.add_system(SystemSpec::new("A", ProtocolKind::Sequencer, 2));
        let c = b.add_system(SystemSpec::new("B", ProtocolKind::Sequencer, 2));
        b.link(a, c, LinkSpec::new(Duration::from_millis(6)));
        let mut world = b.build(seed).unwrap();
        let report = world.run(&WorkloadSpec::small().with_ops(8));
        assert!(report.outcome().is_quiescent(), "seed {seed}");
        let verdict = causal::check(&report.global_history());
        assert!(verdict.is_causal(), "seed {seed}: {:?}", verdict.verdict);
    }
}
