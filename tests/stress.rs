//! Stress scenarios: deeper trees, blocking (sequencer) middle systems,
//! heavier workloads and hostile link conditions. Heavier histories are
//! screened with the polynomial checker plus trace checks; moderate ones
//! still get the full exhaustive treatment.

use std::time::Duration;

use cmi::checker::trace::check_order_respects_causality;
use cmi::checker::{causal, screen, AppliedWrite, CausalVerdict, CheckEngine};
use cmi::core::{InterconnectBuilder, IsTopology, LinkSpec, SystemSpec};
use cmi::memory::{ProtocolKind, WorkloadSpec};
use cmi::sim::{Availability, ChannelSpec};
use cmi::types::SystemId;

/// A sequencer system in the middle of a chain exercises the deferred
/// Propagate_in queue hard: every forwarded pair blocks the IS-process
/// in an ordering round-trip while more pairs stream in from both sides.
#[test]
fn sequencer_middle_system_under_load() {
    for topology in [IsTopology::Pairwise, IsTopology::Shared] {
        let mut b = InterconnectBuilder::new()
            .with_vars(3)
            .with_topology(topology);
        let a = b.add_system(SystemSpec::new("A", ProtocolKind::Ahamad, 3));
        let mid = b.add_system(SystemSpec::new("mid", ProtocolKind::Sequencer, 3));
        let c = b.add_system(SystemSpec::new("C", ProtocolKind::Frontier, 3));
        b.link(a, mid, LinkSpec::new(Duration::from_millis(3)));
        b.link(mid, c, LinkSpec::new(Duration::from_millis(3)));
        let mut world = b.build(21).unwrap();
        // Moderate size: histories with a blocking middle system produce
        // deep causal interleavings that are the checker's worst case.
        let report = world.run(
            &WorkloadSpec::small()
                .with_ops(8)
                .with_write_fraction(0.6)
                .with_mean_gap(Duration::from_millis(2)),
        );
        assert!(
            report.outcome().is_quiescent(),
            "{topology}: must not deadlock"
        );
        let global = report.global_history();
        assert!(global.validate_differentiated().is_ok());
        let verdict = causal::check(&global);
        assert_eq!(
            verdict.engine,
            CheckEngine::FastPath,
            "{topology}: write-distinct histories take the fast path"
        );
        assert!(verdict.is_causal(), "{topology}: {:?}", verdict.verdict);
    }
}

/// Five systems in a chain with dial-up middle links and jitter: a large
/// history checked with the screen plus Lemma 1 / Property 1 trace
/// checks (the exhaustive checker is reserved for the α^k projections,
/// which are smaller).
#[test]
fn deep_chain_with_hostile_links() {
    let mut b = InterconnectBuilder::new()
        .with_vars(4)
        .with_topology(IsTopology::Shared);
    let kinds = [
        ProtocolKind::Ahamad,
        ProtocolKind::Frontier,
        ProtocolKind::Ahamad,
        ProtocolKind::Sequencer,
        ProtocolKind::Frontier,
    ];
    let handles: Vec<_> = kinds
        .iter()
        .enumerate()
        .map(|(i, k)| b.add_system(SystemSpec::new(format!("S{i}"), *k, 3)))
        .collect();
    for (i, w) in handles.windows(2).enumerate() {
        let mut channel = ChannelSpec::jittered(Duration::from_millis(2), Duration::from_millis(3));
        if i == 1 {
            channel = channel.with_availability(Availability::DutyCycle {
                period: Duration::from_millis(80),
                up: Duration::from_millis(20),
            });
        }
        b.link(
            w[0],
            w[1],
            LinkSpec::new(Duration::ZERO).with_channel(channel),
        );
    }
    let mut world = b.build(31).unwrap();
    let report = world.run(&WorkloadSpec::small().with_ops(20).with_write_fraction(0.4));
    assert!(report.outcome().is_quiescent());

    let global = report.global_history();
    assert_eq!(global.len(), 5 * 3 * 20);
    assert!(global.validate_differentiated().is_ok());
    assert!(
        screen::screen(&global).is_clean(),
        "polynomial screen must pass on the full 300-op history"
    );
    // The fast path decides the full 300-op α^T outright — no budget,
    // no Unknown — where the exhaustive engine could only be screened.
    let full = causal::check(&global);
    assert_eq!(full.engine, CheckEngine::FastPath);
    assert!(full.is_causal(), "α^T: {:?}", full.verdict);
    // Full causal check per system projection + trace checks.
    for k in 0..5u16 {
        let alpha_k = report.system_history(SystemId(k));
        let verdict = causal::check(&alpha_k);
        assert_ne!(
            verdict.verdict,
            CausalVerdict::Unknown,
            "α^{k}: tier-1 workloads must never end Unknown"
        );
        assert!(verdict.is_causal(), "α^{k}: {:?}", verdict.verdict);
        for proc in alpha_k.procs() {
            let updates: Vec<AppliedWrite> = report
                .updates_of(proc)
                .iter()
                .map(|u| AppliedWrite {
                    var: u.var,
                    val: u.val,
                })
                .collect();
            check_order_respects_causality(&alpha_k, &updates)
                .unwrap_or_else(|e| panic!("Property 1 at {proc}: {e}"));
        }
    }
    for traffic in report.link_traffic() {
        let sys = report.system_of(traffic.from_isp).unwrap();
        let alpha_k = report.system_history(sys);
        let seq: Vec<AppliedWrite> = traffic
            .pairs
            .iter()
            .map(|p| AppliedWrite {
                var: p.var,
                val: p.val,
            })
            .collect();
        check_order_respects_causality(&alpha_k, &seq)
            .unwrap_or_else(|e| panic!("Lemma 1 on {}→{}: {e}", traffic.from_isp, traffic.to_isp));
    }
}

/// The exhaustive checker itself on a larger α^T: a 2×4 world with 160
/// operations — big enough to exercise memoization and pruning, small
/// enough to stay within budget. The default (fast-path) engine must
/// agree with it, definitively.
#[test]
fn exhaustive_checker_scales_to_160_op_histories() {
    let mut b = InterconnectBuilder::new().with_vars(4);
    let a = b.add_system(SystemSpec::new("A", ProtocolKind::Ahamad, 4));
    let c = b.add_system(SystemSpec::new("B", ProtocolKind::Ahamad, 4));
    b.link(a, c, LinkSpec::new(Duration::from_millis(5)));
    let mut world = b.build(17).unwrap();
    let report = world.run(&WorkloadSpec::small().with_ops(20));
    let global = report.global_history();
    assert_eq!(global.len(), 160);
    let exhaustive = causal::check_exhaustive(&global);
    assert!(exhaustive.is_causal(), "{:?}", exhaustive.verdict);
    let fast = causal::check(&global);
    assert_eq!(fast.engine, CheckEngine::FastPath);
    assert_eq!(fast.is_causal(), exhaustive.is_causal());
}

/// The fast path on a history an order of magnitude past the exhaustive
/// engine's comfort zone: a 2×6 world with 1200 operations, decided
/// definitively in polynomial time.
#[test]
fn fast_path_scales_to_1200_op_histories() {
    let mut b = InterconnectBuilder::new().with_vars(4);
    let a = b.add_system(SystemSpec::new("A", ProtocolKind::Ahamad, 6));
    let c = b.add_system(SystemSpec::new("B", ProtocolKind::Frontier, 6));
    b.link(a, c, LinkSpec::new(Duration::from_millis(5)));
    let mut world = b.build(23).unwrap();
    let report = world.run(&WorkloadSpec::small().with_ops(100).with_write_fraction(0.5));
    assert!(report.outcome().is_quiescent());
    let global = report.global_history();
    assert_eq!(global.len(), 1200);
    assert!(global.validate_differentiated().is_ok());
    let verdict = causal::check(&global);
    assert_eq!(verdict.engine, CheckEngine::FastPath);
    assert_ne!(verdict.verdict, CausalVerdict::Unknown);
    assert!(verdict.is_causal(), "{:?}", verdict.verdict);
}
