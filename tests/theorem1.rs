//! Experiment X6 — Theorem 1 and Corollary 1 as executable checks.
//!
//! Theorem 1: the system obtained by connecting two propagation-based
//! causal systems with the IS-protocols is causal. Corollary 1: the same
//! holds for any number of systems interconnected in a tree.
//!
//! Each test runs a randomized workload on an interconnected world and
//! verifies that the observed computation `α^T` (IS-process operations
//! excluded, as in the paper's Section 4) is causal per Definitions 1–5,
//! and that each per-system computation `α^k` is causal too.

use std::time::Duration;

use cmi::checker::causal;
use cmi::core::{InterconnectBuilder, IsTopology, LinkSpec, RunReport, SystemSpec};
use cmi::memory::{ProtocolKind, WorkloadSpec};

fn assert_all_causal(report: &RunReport, label: &str) {
    let global = report.global_history();
    assert!(
        global.validate_differentiated().is_ok(),
        "{label}: α^T must be differentiated"
    );
    let verdict = causal::check(&global);
    assert!(
        verdict.is_causal(),
        "{label}: α^T not causal: {:?}",
        verdict.verdict
    );
    for sys in 0..report_system_count(report) {
        let sys_id = cmi::types::SystemId(sys as u16);
        let alpha_k = report.system_history(sys_id);
        let v = causal::check(&alpha_k);
        assert!(
            v.is_causal(),
            "{label}: α^{sys} not causal: {:?}",
            v.verdict
        );
    }
}

fn report_system_count(report: &RunReport) -> usize {
    let mut n = 0;
    for op in report.full_history().iter() {
        n = n.max(op.proc.system.index() + 1);
    }
    n
}

fn pair(protocol_a: ProtocolKind, protocol_b: ProtocolKind, seed: u64) -> RunReport {
    let mut b = InterconnectBuilder::new().with_vars(3);
    let a = b.add_system(SystemSpec::new("A", protocol_a, 3));
    let c = b.add_system(SystemSpec::new("B", protocol_b, 3));
    b.link(a, c, LinkSpec::new(Duration::from_millis(8)));
    let mut world = b.build(seed).unwrap();
    world.run(&WorkloadSpec::small().with_ops(10))
}

#[test]
fn two_ahamad_systems_interconnect_causally() {
    for seed in 0..8 {
        let report = pair(ProtocolKind::Ahamad, ProtocolKind::Ahamad, seed);
        assert!(report.outcome().is_quiescent());
        assert_all_causal(&report, &format!("ahamad×ahamad seed {seed}"));
    }
}

#[test]
fn heterogeneous_protocols_interconnect_causally() {
    // The paper's headline flexibility: systems "possibly implemented
    // with different algorithms".
    let combos = [
        (ProtocolKind::Ahamad, ProtocolKind::Frontier),
        (ProtocolKind::Frontier, ProtocolKind::Sequencer),
        (ProtocolKind::Sequencer, ProtocolKind::Ahamad),
    ];
    for (i, (pa, pb)) in combos.into_iter().enumerate() {
        let report = pair(pa, pb, 100 + i as u64);
        assert!(report.outcome().is_quiescent(), "{pa}×{pb} quiesces");
        assert_all_causal(&report, &format!("{pa}×{pb}"));
    }
}

#[test]
fn values_actually_cross_the_interconnection() {
    // Guard against vacuous causality: at least one read in each system
    // must return a value originated in the other system. The run must be
    // long relative to the link delay, or no cross value arrives in time.
    let mut b = InterconnectBuilder::new().with_vars(3);
    let a = b.add_system(SystemSpec::new("A", ProtocolKind::Ahamad, 3));
    let c = b.add_system(SystemSpec::new("B", ProtocolKind::Ahamad, 3));
    b.link(a, c, LinkSpec::new(Duration::from_millis(5)));
    let mut world = b.build(3).unwrap();
    let report = world.run(&WorkloadSpec::small().with_ops(40).with_write_fraction(0.4));
    let global = report.global_history();
    let mut cross = [false, false];
    for op in global.iter() {
        if let Some(Some(v)) = op.read_value() {
            let reader_sys = op.proc.system.index();
            let origin_sys = v.origin().system.index();
            if reader_sys != origin_sys {
                cross[reader_sys] = true;
            }
        }
    }
    assert!(
        cross[0] && cross[1],
        "expected cross-system reads in both directions, got {cross:?}"
    );
}

#[test]
fn corollary1_tree_of_four_systems_is_causal() {
    // A – B – C star + D off B: a genuine tree, mixed protocols.
    let mut b = InterconnectBuilder::new().with_vars(3);
    let a = b.add_system(SystemSpec::new("A", ProtocolKind::Ahamad, 2));
    let c = b.add_system(SystemSpec::new("B", ProtocolKind::Frontier, 2));
    let d = b.add_system(SystemSpec::new("C", ProtocolKind::Ahamad, 2));
    let e = b.add_system(SystemSpec::new("D", ProtocolKind::Sequencer, 2));
    b.link(a, c, LinkSpec::new(Duration::from_millis(10)));
    b.link(c, d, LinkSpec::new(Duration::from_millis(20)));
    b.link(c, e, LinkSpec::new(Duration::from_millis(5)));
    let mut world = b.build(7).unwrap();
    let report = world.run(&WorkloadSpec::small().with_ops(5));
    assert!(report.outcome().is_quiescent());
    assert_all_causal(&report, "tree of four");
}

#[test]
fn corollary1_holds_for_shared_is_topology() {
    let mut b = InterconnectBuilder::new()
        .with_vars(3)
        .with_topology(IsTopology::Shared);
    let a = b.add_system(SystemSpec::new("A", ProtocolKind::Ahamad, 2));
    let c = b.add_system(SystemSpec::new("B", ProtocolKind::Ahamad, 2));
    let d = b.add_system(SystemSpec::new("C", ProtocolKind::Frontier, 2));
    b.link(a, c, LinkSpec::new(Duration::from_millis(4)));
    b.link(c, d, LinkSpec::new(Duration::from_millis(4)));
    let mut world = b.build(11).unwrap();
    let report = world.run(&WorkloadSpec::small().with_ops(30).with_write_fraction(0.4));
    assert!(report.outcome().is_quiescent());
    assert_all_causal(&report, "shared-IS chain");

    // End-to-end propagation: a value from system A must become visible
    // in system C (two hops through B's shared IS-process).
    let global = report.global_history();
    let crossed = global.iter().any(|op| {
        matches!(op.read_value(), Some(Some(v))
            if op.proc.system.index() == 2 && v.origin().system.index() == 0)
    });
    assert!(crossed, "no A-originated value was read in C");
}

#[test]
fn variant2_pre_propagate_is_also_causal() {
    // Force IS-protocol variant 2 (Pre_Propagate_out enabled) — correct
    // for any causal MCS protocol, per Lemma 1's general case.
    for seed in 0..4 {
        let mut b = InterconnectBuilder::new()
            .with_vars(3)
            .force_pre_propagate();
        let a = b.add_system(SystemSpec::new("A", ProtocolKind::Ahamad, 3));
        let c = b.add_system(SystemSpec::new("B", ProtocolKind::Frontier, 3));
        b.link(a, c, LinkSpec::new(Duration::from_millis(12)));
        let mut world = b.build(seed).unwrap();
        let report = world.run(&WorkloadSpec::small().with_ops(6));
        assert!(report.outcome().is_quiescent());
        assert_all_causal(&report, &format!("variant-2 seed {seed}"));
    }
}

#[test]
fn witnesses_from_the_checker_validate() {
    let report = pair(ProtocolKind::Ahamad, ProtocolKind::Frontier, 42);
    let global = report.global_history();
    // The default `check` decides via the witness-free fast path; the
    // exhaustive engine is the one that produces verifiable views.
    let result = causal::check_exhaustive(&global);
    assert!(result.is_causal());
    assert!(
        !result.views.is_empty(),
        "exhaustive engine emits witnesses"
    );
    for (proc, view) in &result.views {
        causal::validate_view(&global, *proc, view)
            .unwrap_or_else(|e| panic!("witness for {proc} invalid: {e}"));
    }
}
