//! The two IS-protocol variants, compared head to head.
//!
//! The paper's variant 2 (Fig. 2) differs from variant 1 (Fig. 1) only
//! by the `Pre_Propagate_out` read issued before each replica update at
//! the IS-process. That read is synchronous and local, so under the
//! same seed the two runs must be **identical** except for those extra
//! read operations: same `α^T`, same message traffic, same replica
//! updates — and exactly one extra IS-read per upcall.

use std::time::Duration;

use cmi::checker::causal;
use cmi::core::{InterconnectBuilder, LinkSpec, RunReport, SystemSpec};
use cmi::memory::{ProtocolKind, WorkloadSpec};
use cmi::types::SystemId;

fn run(variant2: bool, seed: u64) -> RunReport {
    let mut b = InterconnectBuilder::new().with_vars(3);
    if variant2 {
        b = b.force_pre_propagate();
    }
    let a = b.add_system(SystemSpec::new("A", ProtocolKind::Ahamad, 3));
    let c = b.add_system(SystemSpec::new("B", ProtocolKind::Frontier, 3));
    b.link(a, c, LinkSpec::new(Duration::from_millis(8)));
    let mut world = b.build(seed).unwrap();
    world.run(&WorkloadSpec::small().with_ops(10).with_write_fraction(0.5))
}

#[test]
fn variant2_differs_from_variant1_only_by_the_pre_reads() {
    for seed in 0..3 {
        let v1 = run(false, seed);
        let v2 = run(true, seed);

        // Identical externally visible computation α^T…
        assert_eq!(
            v1.global_history(),
            v2.global_history(),
            "seed {seed}: α^T must not depend on the IS-protocol variant"
        );
        // …identical traffic (the extra reads are local)…
        assert_eq!(v1.stats(), v2.stats(), "seed {seed}");
        // …identical replica-update logs everywhere…
        for p in v1.full_history().procs() {
            assert_eq!(v1.updates_of(p), v2.updates_of(p), "seed {seed}: {p}");
        }
        // …and exactly one extra IS-read per upcall. Upcalls fire once
        // per application write (each write reaches each IS-process's
        // replica exactly once in a two-system world).
        let app_writes = v1.global_history().writes().len();
        assert_eq!(
            v2.full_history().len(),
            v1.full_history().len() + app_writes,
            "seed {seed}: one pre-read per upcall"
        );
        // The surplus ops are all reads by IS-processes.
        let isp_reads = |r: &RunReport| {
            r.full_history()
                .iter()
                .filter(|o| r.is_isp(o.proc) && o.kind.is_read())
                .count()
        };
        assert_eq!(isp_reads(&v2), isp_reads(&v1) + app_writes, "seed {seed}");
    }
}

#[test]
fn both_variants_are_causal_on_both_projections() {
    for variant2 in [false, true] {
        let report = run(variant2, 9);
        assert!(causal::check(&report.global_history()).is_causal());
        for k in [SystemId(0), SystemId(1)] {
            assert!(
                causal::check(&report.system_history(k)).is_causal(),
                "variant2={variant2}, α^{}",
                k.0
            );
        }
    }
}
